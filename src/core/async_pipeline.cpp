#include "core/async_pipeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "instrument/flight_recorder.hpp"
#include "instrument/tracer.hpp"

namespace nek_sensei {

// ---- SnapshotDataAdaptor ---------------------------------------------------

SnapshotDataAdaptor::SnapshotDataAdaptor(nekrs::FlowSolver& solver,
                                         mpimini::Comm comm)
    : solver_(&solver) {
  SetCommunicator(comm);
}

sensei::MeshMetadata SnapshotDataAdaptor::GetMeshMetadata(int) {
  return NekMeshMetadata(*solver_, GetCommunicator().Size());
}

std::shared_ptr<svtk::UnstructuredGrid> SnapshotDataAdaptor::GetMesh(int) {
  if (mesh_) return mesh_;
  mesh_ = BuildSemGrid(solver_->Mesh(), solver_->Rule());
  return mesh_;
}

bool SnapshotDataAdaptor::AddArray(svtk::UnstructuredGrid& mesh,
                                   const std::string& name,
                                   svtk::Centering centering) {
  if (centering != svtk::Centering::kPoint) return false;
  if (fields_ == nullptr) {
    throw std::runtime_error("nek_sensei: snapshot adaptor has no snapshot");
  }
  for (const Field& field : *fields_) {
    if (field.name != name) continue;
    if (field.components == 0) return false;  // capture found no such array
    mesh.AdoptPointArray(name, field.components, field.data);
    return true;
  }
  return false;
}

void SnapshotDataAdaptor::ReleaseData() {
  // Per-trigger churn mirrors the live adaptor: the VTK grid is rebuilt for
  // the next trigger.  The staging buffers stay alive in their slot.
  mesh_.reset();
}

// ---- AsyncPipeline ---------------------------------------------------------

AsyncPipeline::AsyncPipeline(nekrs::FlowSolver& solver,
                             sensei::ConfigurableAnalysis& analysis,
                             const NekDataAdaptor& live_data,
                             mpimini::Comm analysis_comm, int depth)
    : solver_(solver),
      analysis_(analysis),
      live_data_(live_data),
      analysis_comm_(analysis_comm) {
  if (depth < 1) {
    throw std::invalid_argument("nek_sensei: async pipeline depth must be >= 1");
  }
  slots_.resize(static_cast<std::size_t>(depth));
  {
    core::MutexLock lock(mutex_);
    in_flight_.assign(slots_.size(), 0);
  }

  // The worker runs as this rank, but with its own single-owner structures:
  // its own memory tracker always, and its own metrics registry / tracer
  // when the run has those planes (per-rank rings are single-owner, so the
  // worker records into a separate lane — tid rank+1000, "rank N worker" —
  // that the runtime folds into RunResult::tracers after Shutdown).
  if (const mpimini::RankEnv* env = mpimini::CurrentEnv()) {
    worker_env_.rank = env->rank;
    // The flight recorder is the one deliberately *shared* instrument: its
    // ring is multi-writer safe, and a crash dump must interleave worker
    // events (codec fallbacks, long waits) with the rank's own timeline.
    worker_env_.flightrec = env->flightrec;
  }
  if (instrument::CurrentMetrics() != nullptr) {
    worker_env_.metrics = std::make_shared<instrument::MetricsRegistry>();
  }
  if (const instrument::Tracer* rank_tracer = instrument::CurrentTracer()) {
    auto worker_tracer = std::make_shared<instrument::Tracer>(
        worker_env_.rank, rank_tracer->Opts());
    worker_tracer->SetGroup(rank_tracer->Group(), rank_tracer->GroupName());
    worker_tracer->SetThreadLane(
        worker_env_.rank + kWorkerTidOffset,
        "rank " + std::to_string(worker_env_.rank) + " worker");
    worker_env_.tracer = std::move(worker_tracer);
  }
  worker_ = std::thread([this] { WorkerMain(); });
}

AsyncPipeline::~AsyncPipeline() {
  if (joined_) return;
  try {
    Shutdown();
  } catch (...) {
    // Destructor path: the error was either already surfaced through
    // Submit/Shutdown or the pipeline is being unwound; never terminate.
  }
}

void AsyncPipeline::RethrowWorkerError() {
  std::exception_ptr error;
  {
    core::MutexLock lock(mutex_);
    error = worker_error_;
    worker_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void AsyncPipeline::CaptureSnapshot(Slot& slot, int step, double time) {
  slot.step = step;
  slot.time = time;

  // The set to snapshot: exactly what the due analyses will pull.  nullopt
  // means "every advertised array" (the checkpoint convention).
  std::vector<std::string> names;
  if (auto required = analysis_.RequiredArrays(step)) {
    names = std::move(*required);
  } else {
    const sensei::MeshMetadata metadata =
        NekMeshMetadata(solver_, analysis_comm_.Size());
    names.reserve(metadata.arrays.size());
    for (const sensei::ArrayMetadata& array : metadata.arrays) {
      names.push_back(array.name);
    }
  }

  // Capture each array, reusing the slot's previous allocation for the
  // same name (steady state: the D2H lands in place, no reallocation).
  std::vector<SnapshotDataAdaptor::Field> captured;
  captured.reserve(names.size());
  for (const std::string& name : names) {
    SnapshotDataAdaptor::Field field;
    field.name = name;
    for (SnapshotDataAdaptor::Field& old : slot.fields) {
      if (old.name == name) {
        field.data = std::move(old.data);
        break;
      }
    }
    field.components =
        CaptureNekArray(solver_, name, live_data_.DerivedFieldsEnabled(),
                        field.data);
    if (field.components == 0) field.data = core::Buffer();
    captured.push_back(std::move(field));
  }
  // Old buffers for names not captured this trigger drop here, on the rank
  // thread that allocated them (tracked-buffer ownership rule).
  slot.fields = std::move(captured);
}

bool AsyncPipeline::Submit(int step, double time) {
  RethrowWorkerError();
  if (!analysis_.AnyDue(step)) {
    return !execute_failed_.load(std::memory_order_relaxed);
  }

  instrument::Span span("async.submit");

  // Backpressure point: every slot in flight means the worker is `depth`
  // updates behind; the rank thread blocks here (and only here).  The wait
  // is idle time, not busy time.
  const std::size_t index = next_slot_;
  next_slot_ = (next_slot_ + 1) % slots_.size();
  const std::int64_t wait_begin_ns = instrument::Tracer::NowNs();
  mpimini::RankEnv* env = mpimini::CurrentEnv();
  if (env != nullptr) env->busy.Pause();
  {
    core::MutexLock lock(mutex_);
    while (in_flight_[index] != 0) slot_freed_cv_.Wait(mutex_);
  }
  if (env != nullptr) env->busy.Resume();
  const double waited =
      static_cast<double>(instrument::Tracer::NowNs() - wait_begin_ns) * 1e-9;
  queue_wait_seconds_ += waited;
  if (auto* metrics = instrument::CurrentMetrics()) {
    metrics->Add("pipeline.queue_wait_seconds", waited);
    metrics->Add("pipeline.submits", 1.0);
  }
  if (waited >= instrument::kFlightStallMinSeconds) {
    // Backpressure stall: the worker is `depth` updates behind and the
    // rank thread just paid for it — prime straggler-forensics material.
    instrument::RecordFlightEvent(instrument::FlightEventKind::kStall,
                                  "pipeline.slot_wait", step, waited);
  }

  // The rank thread owns the slot now (the worker cleared its flag and will
  // not touch it again until re-enqueued).
  CaptureSnapshot(slots_[index], step, time);
  // Causal context rides with the snapshot: the transport writers run on
  // the worker, possibly several steps later, and must stamp this step's
  // origin, not whatever the rank thread is doing by then.
  const instrument::StepProvenance* provenance =
      instrument::CurrentProvenance();
  slots_[index].provenance = (provenance != nullptr && provenance->Valid())
                                 ? *provenance
                                 : instrument::StepProvenance{};

  {
    core::MutexLock lock(mutex_);
    in_flight_[index] = 1;
    queue_.push_back(index);
  }
  work_cv_.NotifyOne();
  return !execute_failed_.load(std::memory_order_relaxed);
}

void AsyncPipeline::WorkerMain() {
  mpimini::WorkerEnvScope env_scope(&worker_env_);
  SnapshotDataAdaptor data(solver_, analysis_comm_);

  for (;;) {
    std::size_t index = 0;
    bool have_job = false;
    {
      core::MutexLock lock(mutex_);
      while (queue_.empty() && !drain_requested_) {
        worker_env_.busy.Pause();  // idle wait is not worker busy time
        work_cv_.Wait(mutex_);
        worker_env_.busy.Resume();
      }
      if (!queue_.empty()) {
        index = queue_.front();
        queue_.pop_front();
        have_job = true;
      }
    }
    if (!have_job) break;  // drain requested and queue empty

    Slot& slot = slots_[index];
    const std::int64_t begin_ns = instrument::Tracer::NowNs();
    bool skip = false;
    {
      core::MutexLock lock(mutex_);
      skip = worker_error_ != nullptr;  // stop analysing after a failure
    }
    if (!skip) {
      try {
        // Re-install the submitting step's causal context (and its clock
        // offset — worker threads share the process clock, so the rank's
        // calibrated offset is also the worker's).
        instrument::ProvenanceScope provenance_scope(
            slot.provenance.Valid() ? &slot.provenance : nullptr);
        instrument::SetClockOffsetNs(slot.provenance.origin_offset_ns);
        data.SetPipelineTime(slot.step, slot.time);
        data.SetSnapshot(&slot.fields);
        const bool ok = analysis_.Execute(data);
        data.SetSnapshot(nullptr);
        if (!ok) execute_failed_.store(true, std::memory_order_relaxed);
        if (auto* metrics = instrument::CurrentMetrics()) {
          metrics->Add("bridge.update_seconds",
                       static_cast<double>(instrument::Tracer::NowNs() -
                                           begin_ns) *
                           1e-9);
          metrics->Add("bridge.updates", 1.0);
        }
      } catch (...) {
        core::MutexLock lock(mutex_);
        if (!worker_error_) worker_error_ = std::current_exception();
      }
    }
    offloaded_ns_.fetch_add(instrument::Tracer::NowNs() - begin_ns,
                            std::memory_order_relaxed);

    {
      core::MutexLock lock(mutex_);
      in_flight_[index] = 0;
    }
    slot_freed_cv_.NotifyOne();
  }

  // Finalize as the last worker job: the analyses' single-owner structures
  // (SST writer, per-adaptor state) were bound to this thread by their
  // first Execute, so their flush/close must happen here too.
  try {
    analysis_.Finalize();
  } catch (...) {
    core::MutexLock lock(mutex_);
    if (!worker_error_) worker_error_ = std::current_exception();
  }

  // Publish this thread's attribution; the rank thread reads these after
  // the join (which provides the happens-before edge).
  worker_buffer_stats_ = core::LocalBufferStats();
  if (worker_env_.metrics) worker_metrics_ = worker_env_.metrics->Snapshot();
}

void AsyncPipeline::Shutdown() {
  if (joined_) return;
  {
    core::MutexLock lock(mutex_);
    drain_requested_ = true;
  }
  work_cv_.NotifyOne();
  {
    instrument::Span span("async.drain");
    mpimini::RankEnv* env = mpimini::CurrentEnv();
    if (env != nullptr) env->busy.Pause();
    worker_.join();
    if (env != nullptr) env->busy.Resume();
  }
  joined_ = true;

  // From here the rank thread may legitimately touch worker-owned
  // structures (e.g. releasing adaptor-held tracked buffers at Bridge
  // destruction); hand the single-owner binding over explicitly.
  worker_env_.memory.ReleaseOwnership();

  // Fold the worker's attribution into the rank, so end-of-run reports see
  // one rank regardless of execution mode.
  core::BufferStats& stats = core::LocalBufferStats();
  stats.allocations += worker_buffer_stats_.allocations;
  stats.allocated_bytes += worker_buffer_stats_.allocated_bytes;
  stats.full_copies += worker_buffer_stats_.full_copies;
  stats.small_copies += worker_buffer_stats_.small_copies;
  stats.copied_bytes += worker_buffer_stats_.copied_bytes;
  stats.adoptions += worker_buffer_stats_.adoptions;
  stats.moves += worker_buffer_stats_.moves;
  stats.device_stages += worker_buffer_stats_.device_stages;

  // Hand the worker's trace lane to the runtime for export.  Clock
  // calibration is copied from the rank tracer now (post-join): the worker
  // shares the rank's process clock, and the rank tracer carries the final
  // calibration including end-of-run drift.
  if (worker_env_.tracer) {
    if (const instrument::Tracer* rank_tracer = instrument::CurrentTracer()) {
      worker_env_.tracer->SetClockCalibration(rank_tracer->ClockOffsetNs(),
                                              rank_tracer->ClockMinRttNs());
      worker_env_.tracer->SetClockDrift(rank_tracer->ClockDriftNs());
    }
    if (mpimini::RankEnv* env = mpimini::CurrentEnv()) {
      env->extra_tracers.push_back(worker_env_.tracer);
    }
  }

  if (auto* metrics = instrument::CurrentMetrics()) {
    metrics->MergeFrom(worker_metrics_);
    // Overlap won: worker seconds that did NOT stall the rank thread.
    const double offloaded = OffloadedSeconds();
    const double overlap = std::max(0.0, offloaded - queue_wait_seconds_);
    metrics->Add("pipeline.overlap_seconds", overlap);
    metrics->Set("insitu.offloaded_share",
                 offloaded > 0.0 ? overlap / offloaded : 0.0);
  }

  RethrowWorkerError();
}

}  // namespace nek_sensei
