// Concurrency-correctness primitives: Clang thread-safety annotations and
// the lock/ownership vocabulary the rest of the repo is written in.
//
// The reproduction runs its "MPI ranks" as threads of one process sharing a
// zero-copy core::Buffer data plane, so the shapes that corrupt the paper's
// Fig 2/5 timings and Fig 3/6 memory curves are exactly shared-memory
// shapes: an unguarded mailbox access, a per-rank registry mutated from the
// wrong thread, a tracked buffer freed on a foreign rank.  Two complementary
// machine checks cover them:
//
//  1. **Static** (this header's macro layer): Clang's `-Wthread-safety`
//     analysis over NSM_GUARDED_BY / NSM_REQUIRES / NSM_ACQUIRE /
//     NSM_RELEASE annotations.  Mutex-protected state (the mpimini mailbox,
//     workflow collection slots) uses the annotated core::Mutex /
//     core::MutexLock / core::CondVar below so every access is proven to
//     hold the right lock at compile time.  The macros expand to nothing on
//     non-Clang compilers, so GCC builds are byte-identical.
//
//  2. **Dynamic** (ThreadOwnershipChecker): the per-rank structures
//     (Tracer, MetricsRegistry, MemoryTracker, SstWriter) are lock-free *by
//     contract* — exactly one rank thread may touch them.  No static
//     analysis can prove a single-owner contract, so under NSM_THREAD_CHECKS
//     every mutating entry point asserts the calling thread is the owning
//     thread and aborts with a report on violation.  Off by default: the
//     checker compiles to an empty struct and inline no-ops.
//
// See DESIGN.md §6 "Correctness tooling" for the discipline and how to run
// each checking lane locally.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(NSM_THREAD_CHECKS) || defined(NSM_LOCK_RANK)
#include <cstdio>
#include <cstdlib>
#endif
#if defined(NSM_THREAD_CHECKS)
#include <thread>
#endif
#if defined(NSM_LOCK_RANK)
#include <vector>
#endif

// ---- annotation macros -----------------------------------------------------
// Clang-only: GCC (and anything else) sees empty expansions.  Guarded on the
// attribute itself, not just __clang__, so future compilers that grow the
// analysis pick it up for free.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define NSM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef NSM_THREAD_ANNOTATION
#define NSM_THREAD_ANNOTATION(x)
#endif

/// A type that is a lockable capability ("mutex" by convention).
#define NSM_CAPABILITY(x) NSM_THREAD_ANNOTATION(capability(x))
/// An RAII type that acquires a capability in its constructor and releases
/// it in its destructor.
#define NSM_SCOPED_CAPABILITY NSM_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding the named capability.
#define NSM_GUARDED_BY(x) NSM_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose pointee is guarded by the named capability.
#define NSM_PT_GUARDED_BY(x) NSM_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function that acquires the capability and holds it on return.
#define NSM_ACQUIRE(...) NSM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function that releases a held capability.
#define NSM_RELEASE(...) NSM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function that tries to acquire; the bool argument is the success value.
#define NSM_TRY_ACQUIRE(...) \
  NSM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function callable only while the caller holds the capability.
#define NSM_REQUIRES(...) \
  NSM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function callable only while the caller does NOT hold the capability
/// (deadlock prevention for self-locking entry points).
#define NSM_EXCLUDES(...) NSM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returning a reference to the named capability.
#define NSM_RETURN_CAPABILITY(x) NSM_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: disable the analysis for one function (used only where the
/// locking pattern is correct but outside the analysis' vocabulary).
#define NSM_NO_THREAD_SAFETY_ANALYSIS \
  NSM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace core {

/// Rank metadata for a core::Mutex, emitted by `nsm_analyze --write-ranks`
/// into src/core/lock_ranks.hpp as the topological order of the static
/// acquired-before graph.  The type exists in every build so ranked
/// declarations (`core::Mutex m{core::lock_rank::kX};`) always compile;
/// the enforcement below is compiled in only under -DNSM_LOCK_RANK=ON.
struct LockRankSpec {
  int rank;
  const char* name;  // the analyzer's lock id, e.g. "mpimini/comm::mutex"
};

#if defined(NSM_LOCK_RANK)

namespace lock_rank_detail {

/// Ranked locks the current thread holds, in acquisition order.  A plain
/// vector: the stack is a handful of entries deep and only ever touched by
/// its own thread.
inline thread_local std::vector<const LockRankSpec*> held_locks;

/// Abort unless `spec` outranks everything this thread already holds.
/// Strict `>`: re-acquiring the same rank is also forbidden (relocking a
/// std::mutex is undefined behavior anyway).
inline void CheckAcquire(const LockRankSpec* spec) {
  if (spec == nullptr) return;  // unranked mutex: nothing to enforce
  for (const LockRankSpec* held : held_locks) {
    if (held->rank >= spec->rank) {
      std::fprintf(
          stderr,
          "[lock-rank] forbidden acquisition order: acquiring \"%s\" "
          "(rank %d) while holding \"%s\" (rank %d) — the acquired-before "
          "graph (nsm_analyze --dot) does not approve this interleaving\n",
          spec->name, spec->rank, held->name, held->rank);
      std::fflush(stderr);
      std::abort();
    }
  }
}

inline void PushHeld(const LockRankSpec* spec) {
  if (spec != nullptr) held_locks.push_back(spec);
}

inline void PopHeld(const LockRankSpec* spec) {
  if (spec == nullptr) return;
  for (auto it = held_locks.rbegin(); it != held_locks.rend(); ++it) {
    if (*it == spec) {
      held_locks.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace lock_rank_detail

#endif  // NSM_LOCK_RANK

/// std::mutex with the capability annotation the Clang analysis needs.
/// Lowercase lock/unlock keep it a BasicLockable, so it composes with
/// std::condition_variable_any (see CondVar).
///
/// A mutex constructed with a LockRankSpec participates in the runtime
/// acquisition-order check under -DNSM_LOCK_RANK=ON; default builds accept
/// the spec and discard it, so ranked declarations cost nothing and
/// sizeof(Mutex) stays sizeof(std::mutex) (asserted by lock_rank_test).
class NSM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#if defined(NSM_LOCK_RANK)
  explicit Mutex(const LockRankSpec& spec) : spec_(&spec) {}
#else
  explicit Mutex(const LockRankSpec& /*spec*/) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NSM_ACQUIRE() {
#if defined(NSM_LOCK_RANK)
    lock_rank_detail::CheckAcquire(spec_);
#endif
    mutex_.lock();
#if defined(NSM_LOCK_RANK)
    lock_rank_detail::PushHeld(spec_);
#endif
  }

  void unlock() NSM_RELEASE() {
#if defined(NSM_LOCK_RANK)
    lock_rank_detail::PopHeld(spec_);
#endif
    mutex_.unlock();
  }

  /// try_lock records the hold but never aborts: a failed try cannot
  /// block, and callers using try_lock for deadlock avoidance are exactly
  /// the ones acquiring against the rank order on purpose.
  bool try_lock() NSM_TRY_ACQUIRE(true) {
    if (!mutex_.try_lock()) return false;
#if defined(NSM_LOCK_RANK)
    lock_rank_detail::PushHeld(spec_);
#endif
    return true;
  }

 private:
  std::mutex mutex_;
#if defined(NSM_LOCK_RANK)
  const LockRankSpec* spec_ = nullptr;
#endif
};

/// Scoped lock of a core::Mutex (the std::lock_guard of the annotated
/// world).  The analysis sees the acquisition in the constructor and the
/// release in the destructor.
class NSM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) NSM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() NSM_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable over core::Mutex.  Wait() REQUIRES the mutex, which
/// is exactly the contract std::condition_variable has but the analysis
/// cannot see through std types.  Callers write explicit
/// `while (!condition) cv.Wait(mutex);` loops instead of predicate
/// overloads: the predicate stays in the enclosing (capability-holding)
/// function body, so guarded reads inside it are analyzed, where a lambda
/// would be opaque to the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mutex`, wait for a notification, reacquire.
  void Wait(Mutex& mutex) NSM_REQUIRES(mutex) { cv_.wait(mutex); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

// ---- dynamic single-owner checking ----------------------------------------

#if defined(NSM_THREAD_CHECKS)

/// Checks the single-owner contract of per-rank structures at run time.
///
/// The owner is bound lazily by the first mutating call (per-rank objects
/// are constructed on the launching thread, then handed to their rank
/// thread before first use — binding at construction would pin the wrong
/// thread).  A mutating call from any other thread aborts with a report.
/// Reset() releases the binding for explicit ownership handoff (e.g. a
/// registry cleared between benchmark configurations).
class ThreadOwnershipChecker {
 public:
  /// Assert the calling thread owns the structure; binds on first call.
  /// `what` names the violated structure/entry point in the report.
  void Check(const char* what) const {
    const std::thread::id self = std::this_thread::get_id();
    std::lock_guard<std::mutex> lock(mutex_);
    if (owner_ == std::thread::id{}) {
      owner_ = self;
      return;
    }
    if (owner_ != self) {
      std::fprintf(stderr,
                   "[thread-checks] single-owner violation: %s mutated from "
                   "a thread that does not own it\n",
                   what);
      std::fflush(stderr);
      std::abort();
    }
  }

  /// Release the owner binding (legitimate ownership handoff).
  void Reset() const {
    std::lock_guard<std::mutex> lock(mutex_);
    owner_ = std::thread::id{};
  }

 private:
  mutable std::mutex mutex_;
  mutable std::thread::id owner_;
};

#else  // !NSM_THREAD_CHECKS

/// No-op stand-in: default builds carry no state and no code for the
/// ownership checks (asserted by the zero-overhead test).
class ThreadOwnershipChecker {
 public:
  void Check(const char* /*what*/) const {}
  void Reset() const {}
};

#endif  // NSM_THREAD_CHECKS

/// True when the dynamic single-owner checks were compiled in.
[[nodiscard]] constexpr bool ThreadChecksEnabled() {
#if defined(NSM_THREAD_CHECKS)
  return true;
#else
  return false;
#endif
}

/// True when the runtime lock-rank assertion was compiled in.
[[nodiscard]] constexpr bool LockRankEnabled() {
#if defined(NSM_LOCK_RANK)
  return true;
#else
  return false;
#endif
}

}  // namespace core
