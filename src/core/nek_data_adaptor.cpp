#include "core/nek_data_adaptor.hpp"

#include <cstring>
#include <stdexcept>

namespace nek_sensei {

namespace {

/// Interleave 3 scalar device fields into (x,y,z) tuples on the device
/// (kernel "pack_vector3"): one kernel plus one D2H replaces three D2H
/// copies and a host-side gather loop.
occamini::Array<double> PackVector3(nekrs::FlowSolver& solver,
                                    const occamini::Array<double>& x,
                                    const occamini::Array<double>& y,
                                    const occamini::Array<double>& z) {
  const std::size_t n = x.size();
  occamini::Array<double> packed(solver.Device(), 3 * n, "device");
  solver.Device().Launch("pack_vector3", [&] {
    const double* xs = x.DevicePtr();
    const double* ys = y.DevicePtr();
    const double* zs = z.DevicePtr();
    double* out = packed.DevicePtr();
    for (std::size_t i = 0; i < n; ++i) {
      out[3 * i + 0] = xs[i];
      out[3 * i + 1] = ys[i];
      out[3 * i + 2] = zs[i];
    }
  });
  return packed;
}

}  // namespace

std::shared_ptr<svtk::UnstructuredGrid> BuildSemGrid(const sem::BoxMesh& mesh,
                                                    const sem::GllRule& rule) {
  const int n = mesh.Order();
  const int np = mesh.NumPoints1D();
  const int nel = mesh.NumLocalElements();
  const std::size_t npoints = mesh.NumLocalDofs();
  const std::size_t ncells =
      static_cast<std::size_t>(nel) * static_cast<std::size_t>(n) * n * n;

  auto grid = std::make_shared<svtk::UnstructuredGrid>(npoints, ncells);

  // Points: the GLL nodes, element-major (matching the dof layout so array
  // staging is a straight copy).
  std::vector<double> x(npoints), y(npoints), z(npoints);
  mesh.FillCoordinates(rule, x, y, z);
  auto points = grid->Points();
  for (std::size_t i = 0; i < npoints; ++i) {
    points[3 * i + 0] = x[i];
    points[3 * i + 1] = y[i];
    points[3 * i + 2] = z[i];
  }

  // Cells: each spectral element becomes n^3 linear hexes over its GLL
  // sub-lattice (VTK hex node ordering).
  std::size_t cell = 0;
  for (int e = 0; e < nel; ++e) {
    const std::int64_t base =
        static_cast<std::int64_t>(e) * static_cast<std::int64_t>(np * np * np);
    auto node = [&](int i, int j, int k) {
      return base + i + static_cast<std::int64_t>(np) * (j +
                 static_cast<std::int64_t>(np) * k);
    };
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          grid->SetCell(cell++, {node(i, j, k), node(i + 1, j, k),
                                 node(i + 1, j + 1, k), node(i, j + 1, k),
                                 node(i, j, k + 1), node(i + 1, j, k + 1),
                                 node(i + 1, j + 1, k + 1),
                                 node(i, j + 1, k + 1)});
        }
      }
    }
  }
  return grid;
}

sensei::MeshMetadata NekMeshMetadata(const nekrs::FlowSolver& solver,
                                     int num_blocks) {
  sensei::MeshMetadata metadata;
  metadata.mesh_name = "mesh";
  metadata.num_blocks = num_blocks;
  const auto& length = solver.Config().mesh.length;
  metadata.global_bounds = {0.0, length[0], 0.0, length[1], 0.0, length[2]};
  metadata.arrays.push_back({"velocity", svtk::Centering::kPoint, 3});
  metadata.arrays.push_back({"pressure", svtk::Centering::kPoint, 1});
  if (solver.Config().solve_temperature) {
    metadata.arrays.push_back({"temperature", svtk::Centering::kPoint, 1});
  }
  return metadata;
}

int CaptureNekArray(nekrs::FlowSolver& solver, const std::string& name,
                    bool derived_enabled, core::Buffer& staged) {
  const std::size_t n = solver.Mesh().NumLocalDofs();

  if (name == "velocity") {
    PackVector3(solver, solver.VelocityX(), solver.VelocityY(),
                solver.VelocityZ())
        .StageToHostInto(staged, "staging");
    return 3;
  }
  if (name == "pressure") {
    solver.Pressure().StageToHostInto(staged, "staging");
    return 1;
  }
  if (name == "temperature" && solver.Config().solve_temperature) {
    solver.Temperature().StageToHostInto(staged, "staging");
    return 1;
  }
  if (name == "vorticity" && derived_enabled) {
    // Derived on the device (as a NekRS post-processing kernel would be),
    // then packed and staged to the host like any other vector field.
    occamini::Array<double> wx(solver.Device(), n, "device");
    occamini::Array<double> wy(solver.Device(), n, "device");
    occamini::Array<double> wz(solver.Device(), n, "device");
    solver.ComputeVorticity({wx.DevicePtr(), n}, {wy.DevicePtr(), n},
                            {wz.DevicePtr(), n});
    PackVector3(solver, wx, wy, wz).StageToHostInto(staged, "staging");
    return 3;
  }
  if (name == "qcriterion" && derived_enabled) {
    occamini::Array<double> q(solver.Device(), n, "device");
    solver.ComputeQCriterion({q.DevicePtr(), n});
    q.StageToHostInto(staged, "staging");
    return 1;
  }
  return 0;
}

void NekDataAdaptor::Initialize(nekrs::FlowSolver* solver) {
  if (!solver) throw std::invalid_argument("nek_sensei: null solver");
  solver_ = solver;
  SetCommunicator(solver->Comm());
}

int NekDataAdaptor::GetNumberOfMeshes() { return solver_ ? 1 : 0; }

sensei::MeshMetadata NekDataAdaptor::GetMeshMetadata(int) {
  if (!solver_) throw std::runtime_error("nek_sensei: not initialized");
  return NekMeshMetadata(*solver_, GetCommunicator().Size());
}

std::shared_ptr<svtk::UnstructuredGrid> NekDataAdaptor::GetMesh(int) {
  if (!solver_) throw std::runtime_error("nek_sensei: not initialized");
  if (mesh_) return mesh_;
  mesh_ = BuildSemGrid(solver_->Mesh(), solver_->Rule());
  return mesh_;
}

bool NekDataAdaptor::AddArray(svtk::UnstructuredGrid& mesh,
                              const std::string& name,
                              svtk::Centering centering) {
  if (!solver_) throw std::runtime_error("nek_sensei: not initialized");
  if (centering != svtk::Centering::kPoint) return false;

  // The device -> host copy the paper calls out: VTK is host-only.  The
  // buffer is adopted downstream, never re-copied; keep a shared handle so
  // StagingBytes() reflects it until ReleaseData.  `staged` starts empty,
  // so CaptureNekArray always lands in a fresh "staging" allocation here.
  core::Buffer staged;
  const int components = CaptureNekArray(*solver_, name, derived_, staged);
  if (components == 0) return false;
  staged_.push_back(staged);
  mesh.AdoptPointArray(name, components, std::move(staged));
  return true;
}

void NekDataAdaptor::ReleaseData() {
  // Drop the VTK objects and staging buffers: per-trigger churn, exactly
  // what the Catalyst configuration pays for in Fig 3.  Buffers are
  // ref-counted, so bytes are freed once the last adopter lets go too.
  mesh_.reset();
  staged_.clear();
}

std::size_t NekDataAdaptor::StagingBytes() const {
  std::size_t total = 0;
  for (const core::Buffer& b : staged_) total += b.size();
  return total;
}

}  // namespace nek_sensei
