#include "core/nek_data_adaptor.hpp"

#include <cstring>
#include <stdexcept>

namespace nek_sensei {

void NekDataAdaptor::Initialize(nekrs::FlowSolver* solver) {
  if (!solver) throw std::invalid_argument("nek_sensei: null solver");
  solver_ = solver;
  SetCommunicator(solver->Comm());
}

int NekDataAdaptor::GetNumberOfMeshes() { return solver_ ? 1 : 0; }

sensei::MeshMetadata NekDataAdaptor::GetMeshMetadata(int) {
  if (!solver_) throw std::runtime_error("nek_sensei: not initialized");
  sensei::MeshMetadata metadata;
  metadata.mesh_name = "mesh";
  metadata.num_blocks = GetCommunicator().Size();
  const auto& length = solver_->Config().mesh.length;
  metadata.global_bounds = {0.0, length[0], 0.0, length[1], 0.0, length[2]};
  metadata.arrays.push_back({"velocity", svtk::Centering::kPoint, 3});
  metadata.arrays.push_back({"pressure", svtk::Centering::kPoint, 1});
  if (solver_->Config().solve_temperature) {
    metadata.arrays.push_back({"temperature", svtk::Centering::kPoint, 1});
  }
  // Derived fields (vorticity, qcriterion) are intentionally not advertised:
  // checkpoints dump raw simulation state only, but rendering views may
  // request them by name through AddArray.
  return metadata;
}

std::shared_ptr<svtk::UnstructuredGrid> NekDataAdaptor::GetMesh(int) {
  if (!solver_) throw std::runtime_error("nek_sensei: not initialized");
  if (mesh_) return mesh_;

  const sem::BoxMesh& mesh = solver_->Mesh();
  const sem::GllRule& rule = solver_->Rule();
  const int n = mesh.Order();
  const int np = mesh.NumPoints1D();
  const int nel = mesh.NumLocalElements();
  const std::size_t npoints = mesh.NumLocalDofs();
  const std::size_t ncells = static_cast<std::size_t>(nel) *
                             static_cast<std::size_t>(n) * n * n;

  mesh_ = std::make_shared<svtk::UnstructuredGrid>(npoints, ncells);

  // Points: the GLL nodes, element-major (matching the dof layout so array
  // staging is a straight copy).
  std::vector<double> x(npoints), y(npoints), z(npoints);
  mesh.FillCoordinates(rule, x, y, z);
  auto points = mesh_->Points();
  for (std::size_t i = 0; i < npoints; ++i) {
    points[3 * i + 0] = x[i];
    points[3 * i + 1] = y[i];
    points[3 * i + 2] = z[i];
  }

  // Cells: each spectral element becomes n^3 linear hexes over its GLL
  // sub-lattice (VTK hex node ordering).
  std::size_t cell = 0;
  for (int e = 0; e < nel; ++e) {
    const std::int64_t base =
        static_cast<std::int64_t>(e) * static_cast<std::int64_t>(np * np * np);
    auto node = [&](int i, int j, int k) {
      return base + i + static_cast<std::int64_t>(np) * (j +
                 static_cast<std::int64_t>(np) * k);
    };
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          mesh_->SetCell(cell++, {node(i, j, k), node(i + 1, j, k),
                                  node(i + 1, j + 1, k), node(i, j + 1, k),
                                  node(i, j, k + 1), node(i + 1, j, k + 1),
                                  node(i + 1, j + 1, k + 1),
                                  node(i, j + 1, k + 1)});
        }
      }
    }
  }
  return mesh_;
}

core::Buffer NekDataAdaptor::Stage(const occamini::Array<double>& field) {
  // The device -> host copy the paper calls out: VTK is host-only.  The
  // buffer is adopted downstream, never re-copied; keep a shared handle so
  // StagingBytes() reflects it until ReleaseData.
  core::Buffer host = field.StageToHost("staging");
  staged_.push_back(host);
  return host;
}

core::Buffer NekDataAdaptor::StageVector3(const occamini::Array<double>& x,
                                          const occamini::Array<double>& y,
                                          const occamini::Array<double>& z) {
  // Interleave on the device so the host sees VTK tuple layout directly:
  // one kernel plus one D2H replaces three D2H copies and a host-side
  // gather loop.
  const std::size_t n = x.size();
  occamini::Array<double> packed(solver_->Device(), 3 * n, "device");
  solver_->Device().Launch("pack_vector3", [&] {
    const double* xs = x.DevicePtr();
    const double* ys = y.DevicePtr();
    const double* zs = z.DevicePtr();
    double* out = packed.DevicePtr();
    for (std::size_t i = 0; i < n; ++i) {
      out[3 * i + 0] = xs[i];
      out[3 * i + 1] = ys[i];
      out[3 * i + 2] = zs[i];
    }
  });
  return Stage(packed);
}

bool NekDataAdaptor::AddArray(svtk::UnstructuredGrid& mesh,
                              const std::string& name,
                              svtk::Centering centering) {
  if (!solver_) throw std::runtime_error("nek_sensei: not initialized");
  if (centering != svtk::Centering::kPoint) return false;
  const std::size_t n = mesh.NumPoints();

  if (name == "velocity") {
    mesh.AdoptPointArray("velocity", 3,
                         StageVector3(solver_->VelocityX(),
                                      solver_->VelocityY(),
                                      solver_->VelocityZ()));
    return true;
  }
  if (name == "pressure") {
    mesh.AdoptPointArray("pressure", 1, Stage(solver_->Pressure()));
    return true;
  }
  if (name == "temperature" && solver_->Config().solve_temperature) {
    mesh.AdoptPointArray("temperature", 1, Stage(solver_->Temperature()));
    return true;
  }
  if (name == "vorticity" && derived_) {
    // Derived on the device (as a NekRS post-processing kernel would be),
    // then packed and staged to the host like any other vector field.
    occamini::Array<double> wx(solver_->Device(), n, "device");
    occamini::Array<double> wy(solver_->Device(), n, "device");
    occamini::Array<double> wz(solver_->Device(), n, "device");
    solver_->ComputeVorticity({wx.DevicePtr(), n}, {wy.DevicePtr(), n},
                              {wz.DevicePtr(), n});
    mesh.AdoptPointArray("vorticity", 3, StageVector3(wx, wy, wz));
    return true;
  }
  if (name == "qcriterion" && derived_) {
    occamini::Array<double> q(solver_->Device(), n, "device");
    solver_->ComputeQCriterion({q.DevicePtr(), n});
    mesh.AdoptPointArray("qcriterion", 1, Stage(q));
    return true;
  }
  return false;
}

void NekDataAdaptor::ReleaseData() {
  // Drop the VTK objects and staging buffers: per-trigger churn, exactly
  // what the Catalyst configuration pays for in Fig 3.  Buffers are
  // ref-counted, so bytes are freed once the last adopter lets go too.
  mesh_.reset();
  staged_.clear();
}

std::size_t NekDataAdaptor::StagingBytes() const {
  std::size_t total = 0;
  for (const core::Buffer& b : staged_) total += b.size();
  return total;
}

}  // namespace nek_sensei
