#include "core/nek_data_adaptor.hpp"

#include <cstring>
#include <stdexcept>

namespace nek_sensei {

void NekDataAdaptor::Initialize(nekrs::FlowSolver* solver) {
  if (!solver) throw std::invalid_argument("nek_sensei: null solver");
  solver_ = solver;
  SetCommunicator(solver->Comm());
}

int NekDataAdaptor::GetNumberOfMeshes() { return solver_ ? 1 : 0; }

sensei::MeshMetadata NekDataAdaptor::GetMeshMetadata(int) {
  if (!solver_) throw std::runtime_error("nek_sensei: not initialized");
  sensei::MeshMetadata metadata;
  metadata.mesh_name = "mesh";
  metadata.num_blocks = GetCommunicator().Size();
  const auto& length = solver_->Config().mesh.length;
  metadata.global_bounds = {0.0, length[0], 0.0, length[1], 0.0, length[2]};
  metadata.arrays.push_back({"velocity", svtk::Centering::kPoint, 3});
  metadata.arrays.push_back({"pressure", svtk::Centering::kPoint, 1});
  if (solver_->Config().solve_temperature) {
    metadata.arrays.push_back({"temperature", svtk::Centering::kPoint, 1});
  }
  // Derived fields (vorticity, qcriterion) are intentionally not advertised:
  // checkpoints dump raw simulation state only, but rendering views may
  // request them by name through AddArray.
  return metadata;
}

std::shared_ptr<svtk::UnstructuredGrid> NekDataAdaptor::GetMesh(int) {
  if (!solver_) throw std::runtime_error("nek_sensei: not initialized");
  if (mesh_) return mesh_;

  const sem::BoxMesh& mesh = solver_->Mesh();
  const sem::GllRule& rule = solver_->Rule();
  const int n = mesh.Order();
  const int np = mesh.NumPoints1D();
  const int nel = mesh.NumLocalElements();
  const std::size_t npoints = mesh.NumLocalDofs();
  const std::size_t ncells = static_cast<std::size_t>(nel) *
                             static_cast<std::size_t>(n) * n * n;

  mesh_ = std::make_shared<svtk::UnstructuredGrid>(npoints, ncells);

  // Points: the GLL nodes, element-major (matching the dof layout so array
  // staging is a straight copy).
  std::vector<double> x(npoints), y(npoints), z(npoints);
  mesh.FillCoordinates(rule, x, y, z);
  auto points = mesh_->Points();
  for (std::size_t i = 0; i < npoints; ++i) {
    points[3 * i + 0] = x[i];
    points[3 * i + 1] = y[i];
    points[3 * i + 2] = z[i];
  }

  // Cells: each spectral element becomes n^3 linear hexes over its GLL
  // sub-lattice (VTK hex node ordering).
  std::size_t cell = 0;
  for (int e = 0; e < nel; ++e) {
    const std::int64_t base =
        static_cast<std::int64_t>(e) * static_cast<std::int64_t>(np * np * np);
    auto node = [&](int i, int j, int k) {
      return base + i + static_cast<std::int64_t>(np) * (j +
                 static_cast<std::int64_t>(np) * k);
    };
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          mesh_->SetCell(cell++, {node(i, j, k), node(i + 1, j, k),
                                  node(i + 1, j + 1, k), node(i, j + 1, k),
                                  node(i, j, k + 1), node(i + 1, j, k + 1),
                                  node(i + 1, j + 1, k + 1),
                                  node(i, j + 1, k + 1)});
        }
      }
    }
  }
  return mesh_;
}

void NekDataAdaptor::Stage(occamini::Array<double>& field,
                           instrument::TrackedBuffer<double>& staging) {
  if (staging.size() != field.size()) {
    staging = instrument::TrackedBuffer<double>("staging", field.size());
  }
  // The device -> host copy the paper calls out: VTK is host-only.
  field.CopyToHost({staging.data(), staging.size()});
}

bool NekDataAdaptor::AddArray(svtk::UnstructuredGrid& mesh,
                              const std::string& name,
                              svtk::Centering centering) {
  if (!solver_) throw std::runtime_error("nek_sensei: not initialized");
  if (centering != svtk::Centering::kPoint) return false;
  const std::size_t n = mesh.NumPoints();

  if (name == "velocity") {
    Stage(solver_->VelocityX(), stage_u_);
    Stage(solver_->VelocityY(), stage_v_);
    Stage(solver_->VelocityZ(), stage_w_);
    svtk::DataArray& array = mesh.AddPointArray("velocity", 3);
    for (std::size_t i = 0; i < n; ++i) {
      array.At(i, 0) = stage_u_[i];
      array.At(i, 1) = stage_v_[i];
      array.At(i, 2) = stage_w_[i];
    }
    return true;
  }
  if (name == "pressure") {
    Stage(solver_->Pressure(), stage_p_);
    svtk::DataArray& array = mesh.AddPointArray("pressure", 1);
    std::memcpy(array.Data().data(), stage_p_.data(), n * sizeof(double));
    return true;
  }
  if (name == "temperature" && solver_->Config().solve_temperature) {
    Stage(solver_->Temperature(), stage_t_);
    svtk::DataArray& array = mesh.AddPointArray("temperature", 1);
    std::memcpy(array.Data().data(), stage_t_.data(), n * sizeof(double));
    return true;
  }
  if (name == "vorticity" && derived_) {
    // Derived on the device (as a NekRS post-processing kernel would be),
    // then staged to the host like any other field.
    occamini::Array<double> wx(solver_->Device(), n, "device");
    occamini::Array<double> wy(solver_->Device(), n, "device");
    occamini::Array<double> wz(solver_->Device(), n, "device");
    solver_->ComputeVorticity({wx.DevicePtr(), n}, {wy.DevicePtr(), n},
                              {wz.DevicePtr(), n});
    Stage(wx, stage_u_);
    Stage(wy, stage_v_);
    Stage(wz, stage_w_);
    svtk::DataArray& array = mesh.AddPointArray("vorticity", 3);
    for (std::size_t i = 0; i < n; ++i) {
      array.At(i, 0) = stage_u_[i];
      array.At(i, 1) = stage_v_[i];
      array.At(i, 2) = stage_w_[i];
    }
    return true;
  }
  if (name == "qcriterion" && derived_) {
    occamini::Array<double> q(solver_->Device(), n, "device");
    solver_->ComputeQCriterion({q.DevicePtr(), n});
    Stage(q, stage_p_);
    svtk::DataArray& array = mesh.AddPointArray("qcriterion", 1);
    std::memcpy(array.Data().data(), stage_p_.data(), n * sizeof(double));
    return true;
  }
  return false;
}

void NekDataAdaptor::ReleaseData() {
  // Drop the VTK objects and staging buffers: per-trigger churn, exactly
  // what the Catalyst configuration pays for in Fig 3.
  mesh_.reset();
  stage_u_ = {};
  stage_v_ = {};
  stage_w_ = {};
  stage_p_ = {};
  stage_t_ = {};
}

std::size_t NekDataAdaptor::StagingBytes() const {
  return stage_u_.Bytes() + stage_v_.Bytes() + stage_w_.Bytes() +
         stage_p_.Bytes() + stage_t_.Bytes();
}

}  // namespace nek_sensei
