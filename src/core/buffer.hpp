// core::Buffer — the unified zero-copy data plane.
//
// Every layer boundary in the reproduction used to re-copy field data:
// occamini staged device fields into a private host vector, svtk::DataArray
// copied the staging bytes again, adios::MarshalStep packed them a third
// time, and mpimini::Comm::SendBytes memcpy'd the packed buffer into the
// destination mailbox.  The paper's overhead figures (Figs 2/3/5) are
// dominated by exactly this class of staging copy, so the data plane now
// shares one ref-counted byte buffer across all four layers:
//
//   occamini::Memory::ToHost        -> lands the D2H copy in a Buffer
//   svtk::DataArray (adopt ctor)    -> wraps the staged buffer, no copy
//   adios::MarshalChain             -> scatter-gather views, no pack
//   mpimini::Comm::SendGather       -> ONE contiguous pack at the wire
//   mpimini::Comm::RecvBuffer       -> moves ownership out of the mailbox
//
// Buffers carry a memory-tracker category so the per-rank high-water-mark
// attribution (Fig 3/6) keeps working, and every bulk copy that still
// happens is counted in per-rank BufferStats so tests can assert the
// copy-count invariants (<= 2 full-field copies per step on the in situ
// Catalyst and in transit SST paths; the seed performed >= 4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace core {

/// Host copies of at least this many bytes count as "full-field" copies;
/// smaller ones (collective scalars, control messages, format headers) are
/// tallied separately so the data-plane invariants are not polluted by
/// 8-byte traffic.
inline constexpr std::size_t kFullFieldBytes = 4096;

/// Per-rank (per-thread) data-plane statistics, TransferStats-style.
struct BufferStats {
  std::uint64_t allocations = 0;   ///< buffers allocated through the plane
  std::size_t allocated_bytes = 0;
  std::uint64_t full_copies = 0;   ///< bulk host copies >= kFullFieldBytes
  std::uint64_t small_copies = 0;  ///< control-sized host copies
  std::size_t copied_bytes = 0;    ///< bytes moved by host copies (all sizes)
  std::uint64_t adoptions = 0;     ///< zero-copy wraps / slices across layers
  std::uint64_t moves = 0;         ///< zero-copy ownership transfers (send/recv)
  std::uint64_t device_stages = 0; ///< mandatory D2H landings (VTK is host-only)
};

/// Statistics of the calling rank thread (mirrors instrument::CurrentTracker
/// threading: one accumulator per rank thread, plus one for the main thread).
[[nodiscard]] BufferStats& LocalBufferStats();
void ResetLocalBufferStats();

/// Record a bulk host copy performed by a data-plane wrapper.
void CountCopy(std::size_t bytes);
/// Record a zero-copy adoption (wrap or slice).
void CountAdoption();
/// Record a zero-copy ownership transfer.
void CountMove();
/// Record a device->host staging landing.
void CountDeviceStage();

namespace detail {
struct Block;
#if defined(NSM_BUFFER_SENTINEL)
// Handle-state brands.  Deliberately high-entropy values: stack reuse or a
// wild write is vanishingly unlikely to reproduce one by accident.
inline constexpr std::uint32_t kHandleLive = 0xB1FFE41Fu;
inline constexpr std::uint32_t kHandleMoved = 0x3D0C3D0Cu;
inline constexpr std::uint32_t kHandleDead = 0xDEADC0DEu;
#endif
}  // namespace detail

/// True when the debug sentinel (guard canaries, poison-on-release, handle
/// state audits) was compiled in (-DNSM_BUFFER_SENTINEL=ON).  Bench
/// baselines must only be regenerated from builds where this is false.
[[nodiscard]] constexpr bool BufferSentinelEnabled() {
#if defined(NSM_BUFFER_SENTINEL)
  return true;
#else
  return false;
#endif
}

/// Shared handle onto a window of a ref-counted byte block.
///
/// Copying a Buffer shares the block (no bytes move); moving transfers the
/// handle.  Deep copies only happen through the explicit, counted entry
/// points (CopyOf / Clone / CopyIn).  Blocks allocated with a non-empty
/// category report their bytes to the rank's MemoryTracker for the lifetime
/// of the block (see DetachTracking for cross-rank handoff).
class Buffer {
 public:
  Buffer() = default;

#if defined(NSM_BUFFER_SENTINEL)
  // Sentinel builds audit every handle transition: copies/moves maintain a
  // shadow handle count on the block, moved-from and destroyed handles are
  // branded so misuse aborts with a report instead of corrupting silently.
  // Default builds keep the implicit (zero-overhead) special members.
  Buffer(const Buffer& other);
  Buffer& operator=(const Buffer& other);
  Buffer(Buffer&& other) noexcept;
  Buffer& operator=(Buffer&& other) noexcept;
  ~Buffer();
#endif

  /// Allocate `bytes` zero-initialized bytes, tracked under `category`
  /// (empty category => untracked, e.g. transport mailbox storage).
  Buffer(std::string category, std::size_t bytes);

  /// Allocate and fill from `src` (counted as one copy).
  [[nodiscard]] static Buffer CopyOf(std::string category,
                                     std::span<const std::byte> src);

  /// Wrap external storage without copying; `keepalive` guards the lifetime.
  [[nodiscard]] static Buffer Adopt(std::shared_ptr<const void> keepalive,
                                    const std::byte* data, std::size_t bytes);

  /// Take ownership of a vector's storage without copying.
  [[nodiscard]] static Buffer TakeVector(std::string category,
                                         std::vector<std::byte>&& bytes);

  // -- container-style access (mailbox payload compatibility) --------------
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::byte* data();
  [[nodiscard]] const std::byte* data() const;
  [[nodiscard]] std::byte& operator[](std::size_t i) { return data()[i]; }
  [[nodiscard]] const std::byte& operator[](std::size_t i) const {
    return data()[i];
  }

  [[nodiscard]] std::span<std::byte> bytes() {
    return {data(), size_};
  }
  [[nodiscard]] std::span<const std::byte> bytes() const {
    return {data(), size_};
  }
  operator std::span<const std::byte>() const { return bytes(); }  // NOLINT

  /// Typed view; throws if the window is misaligned or not a whole number
  /// of elements.
  template <typename T>
  [[nodiscard]] std::span<T> As() {
    CheckTyped(alignof(T), sizeof(T));
    return {reinterpret_cast<T*>(data()), size_ / sizeof(T)};
  }
  template <typename T>
  [[nodiscard]] std::span<const T> As() const {
    CheckTyped(alignof(T), sizeof(T));
    return {reinterpret_cast<const T*>(data()), size_ / sizeof(T)};
  }

  // -- zero-copy operations -------------------------------------------------
  /// Share a sub-window [offset, offset+bytes) of this buffer (counted as an
  /// adoption; no bytes move).
  [[nodiscard]] Buffer Slice(std::size_t offset, std::size_t bytes) const;

  // -- counted deep copies --------------------------------------------------
  /// Copy `src` into this buffer at `offset` (counted).
  void CopyIn(std::span<const std::byte> src, std::size_t offset = 0);
  /// Freshly allocated deep copy (counted).
  [[nodiscard]] Buffer Clone(std::string category) const;

  /// Stop attributing this block's bytes to the allocating rank's
  /// MemoryTracker.  Required before handing an owned buffer to another
  /// rank's thread: trackers are per-rank and not thread-safe, so the bytes
  /// must leave the sender's books on the sender's thread.
  void DetachTracking();

  /// Tracker category the block was allocated under ("" if untracked
  /// or adopted).
  [[nodiscard]] const std::string& Category() const;

  /// Number of Buffer handles sharing the block (0 for a null buffer).
  [[nodiscard]] long UseCount() const;

 private:
  void CheckTyped(std::size_t alignment, std::size_t element) const;

#if defined(NSM_BUFFER_SENTINEL)
  void SentinelAttach();
  void SentinelDetach();
  void SentinelCheckUsable(const char* what) const;
#endif

  std::shared_ptr<detail::Block> block_;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
#if defined(NSM_BUFFER_SENTINEL)
  /// Handle-state brand (live / moved-from / destroyed), checked before any
  /// member is touched so a double-destroy is caught *before* the shared_ptr
  /// underflows the real refcount.
  std::uint32_t sentinel_state_ = detail::kHandleLive;
#endif
};

/// Byte-wise content equality (ownership and category are not compared).
inline bool operator==(const Buffer& a, const Buffer& b) {
  const auto sa = a.bytes();
  const auto sb = b.bytes();
  return sa.size() == sb.size() &&
         (sa.empty() || std::memcmp(sa.data(), sb.data(), sa.size()) == 0);
}

inline bool operator==(const Buffer& a, std::span<const std::byte> b) {
  const auto sa = a.bytes();
  return sa.size() == b.size() &&
         (sa.empty() || std::memcmp(sa.data(), b.data(), sa.size()) == 0);
}

/// Read-only shared view of a buffer window: the unit handed across layer
/// boundaries in scatter-gather lists.  Keeps the underlying block alive.
class BufferView {
 public:
  BufferView() = default;
  BufferView(Buffer buffer)  // NOLINT: deliberate implicit wrap
      : buffer_(std::move(buffer)) {}
  BufferView(const Buffer& buffer, std::size_t offset, std::size_t bytes)
      : buffer_(buffer.Slice(offset, bytes)) {}

  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  [[nodiscard]] bool empty() const { return buffer_.empty(); }
  [[nodiscard]] const std::byte* data() const { return buffer_.data(); }
  [[nodiscard]] std::span<const std::byte> bytes() const {
    return buffer_.bytes();
  }
  operator std::span<const std::byte>() const { return bytes(); }  // NOLINT

  template <typename T>
  [[nodiscard]] std::span<const T> As() const {
    return buffer_.As<T>();
  }

 private:
  Buffer buffer_;
};

/// Scatter-gather list: a logical contiguous byte stream assembled from
/// segment views.  Layers append views instead of packing; the single
/// contiguous pack happens once, at the transport boundary (Pack /
/// mpimini::Comm::SendGather).
class BufferChain {
 public:
  BufferChain() = default;

  /// A chain holding one contiguous segment.
  explicit BufferChain(BufferView segment) { Append(std::move(segment)); }

  void Append(BufferView segment);
  void Append(BufferChain chain);

  [[nodiscard]] const std::vector<BufferView>& Segments() const {
    return segments_;
  }
  [[nodiscard]] std::size_t TotalBytes() const { return total_bytes_; }
  [[nodiscard]] bool Empty() const { return total_bytes_ == 0; }

  /// True when the chain is zero or one segment, i.e. already contiguous.
  [[nodiscard]] bool Contiguous() const { return segments_.size() <= 1; }
  /// The single segment's bytes; throws if the chain has > 1 segment.
  [[nodiscard]] std::span<const std::byte> ContiguousBytes() const;

  /// THE transport-boundary gather: one counted copy into a fresh buffer.
  [[nodiscard]] Buffer Pack(std::string category) const;
  /// Gather into caller storage (dst.size() must equal TotalBytes; counted).
  void PackInto(std::span<std::byte> dst) const;

 private:
  std::vector<BufferView> segments_;
  std::size_t total_bytes_ = 0;
};

}  // namespace core
