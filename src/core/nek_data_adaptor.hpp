// nek_sensei::NekDataAdaptor — the paper's contribution (Listing 2): the
// SENSEI DataAdaptor for Nek-family spectral element solvers.
//
// Data path, exactly as §3.2 describes: solver fields live in (simulated)
// GPU device memory; because the VTK data model has no device support, each
// requested array is copied device -> host into a staging buffer (tracked
// under "staging", metered by occamini) and then laid into a VTK-model
// DataArray.  The spectral element mesh is exposed as an unstructured hex
// grid with each element tessellated into order^3 linear sub-cells.
#pragma once

#include <memory>
#include <string>

#include "nekrs/flow_solver.hpp"
#include "sensei/data_adaptor.hpp"

namespace nek_sensei {

class NekDataAdaptor final : public sensei::DataAdaptor {
 public:
  NekDataAdaptor() = default;

  /// Bind to a running solver (the paper's Initialize(nek_data)).
  void Initialize(nekrs::FlowSolver* solver);

  int GetNumberOfMeshes() override;
  sensei::MeshMetadata GetMeshMetadata(int id) override;
  std::shared_ptr<svtk::UnstructuredGrid> GetMesh(int id) override;
  bool AddArray(svtk::UnstructuredGrid& mesh, const std::string& name,
                svtk::Centering centering) override;
  void ReleaseData() override;

  /// Bytes currently held in host staging buffers (diagnostics/tests).
  [[nodiscard]] std::size_t StagingBytes() const;

  /// Enable/disable advertising derived fields (vorticity, qcriterion);
  /// enabled by default. Computing them costs nine gradient evaluations on
  /// the device per request.
  void SetDerivedFieldsEnabled(bool enabled) { derived_ = enabled; }

 private:
  /// Copy one device field into a host staging buffer.
  void Stage(occamini::Array<double>& field,
             instrument::TrackedBuffer<double>& staging);

  nekrs::FlowSolver* solver_ = nullptr;
  bool derived_ = true;
  std::shared_ptr<svtk::UnstructuredGrid> mesh_;  // cached until ReleaseData
  instrument::TrackedBuffer<double> stage_u_, stage_v_, stage_w_, stage_p_,
      stage_t_;
};

}  // namespace nek_sensei
