// nek_sensei::NekDataAdaptor — the paper's contribution (Listing 2): the
// SENSEI DataAdaptor for Nek-family spectral element solvers.
//
// Data path, exactly as §3.2 describes: solver fields live in (simulated)
// GPU device memory; because the VTK data model has no device support, each
// requested array is copied device -> host into a staging buffer (tracked
// under "staging", metered by occamini).  That single device -> host copy is
// the only one: the staging buffer is a ref-counted data-plane Buffer that
// the VTK DataArray adopts outright, so no host-side bytes are re-copied.
// Vector fields (velocity, vorticity) are interleaved on the device by a
// pack kernel before the one D2H transfer.  The spectral element mesh is
// exposed as an unstructured hex grid with each element tessellated into
// order^3 linear sub-cells.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/buffer.hpp"
#include "nekrs/flow_solver.hpp"
#include "sensei/data_adaptor.hpp"

namespace nek_sensei {

class NekDataAdaptor final : public sensei::DataAdaptor {
 public:
  NekDataAdaptor() = default;

  /// Bind to a running solver (the paper's Initialize(nek_data)).
  void Initialize(nekrs::FlowSolver* solver);

  int GetNumberOfMeshes() override;
  sensei::MeshMetadata GetMeshMetadata(int id) override;
  std::shared_ptr<svtk::UnstructuredGrid> GetMesh(int id) override;
  bool AddArray(svtk::UnstructuredGrid& mesh, const std::string& name,
                svtk::Centering centering) override;
  void ReleaseData() override;

  /// Bytes currently held in host staging buffers (diagnostics/tests).
  [[nodiscard]] std::size_t StagingBytes() const;

  /// Enable/disable advertising derived fields (vorticity, qcriterion);
  /// enabled by default. Computing them costs nine gradient evaluations on
  /// the device per request.
  void SetDerivedFieldsEnabled(bool enabled) { derived_ = enabled; }

 private:
  /// Stage one device field to the host: the single mandatory copy of the
  /// Catalyst path.  The returned buffer is also remembered in `staged_`
  /// (shared, not copied) so StagingBytes() can report it until ReleaseData.
  core::Buffer Stage(const occamini::Array<double>& field);

  /// Interleave 3 scalar device fields into (x,y,z) tuples on the device
  /// (kernel "pack_vector3"), then stage the packed result with one D2H.
  core::Buffer StageVector3(const occamini::Array<double>& x,
                            const occamini::Array<double>& y,
                            const occamini::Array<double>& z);

  nekrs::FlowSolver* solver_ = nullptr;
  bool derived_ = true;
  std::shared_ptr<svtk::UnstructuredGrid> mesh_;  // cached until ReleaseData
  std::vector<core::Buffer> staged_;  // shared views of adopted staging
};

}  // namespace nek_sensei
