// nek_sensei::NekDataAdaptor — the paper's contribution (Listing 2): the
// SENSEI DataAdaptor for Nek-family spectral element solvers.
//
// Data path, exactly as §3.2 describes: solver fields live in (simulated)
// GPU device memory; because the VTK data model has no device support, each
// requested array is copied device -> host into a staging buffer (tracked
// under "staging", metered by occamini).  That single device -> host copy is
// the only one: the staging buffer is a ref-counted data-plane Buffer that
// the VTK DataArray adopts outright, so no host-side bytes are re-copied.
// Vector fields (velocity, vorticity) are interleaved on the device by a
// pack kernel before the one D2H transfer.  The spectral element mesh is
// exposed as an unstructured hex grid with each element tessellated into
// order^3 linear sub-cells.
//
// The grid build, mesh metadata, and per-array device capture are free
// functions so the async pipeline's snapshot adaptor (DESIGN.md §3b) shares
// them with the live adaptor instead of duplicating the geometry and kernel
// logic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/buffer.hpp"
#include "nekrs/flow_solver.hpp"
#include "sensei/data_adaptor.hpp"

namespace nek_sensei {

/// Build the rank-local unstructured hex grid: each spectral element of
/// `mesh` tessellated into order^3 linear hexes over its GLL sub-lattice
/// (VTK node ordering).  Reads only const geometry, so it is safe to call
/// from the async worker thread while the solver steps.
[[nodiscard]] std::shared_ptr<svtk::UnstructuredGrid> BuildSemGrid(
    const sem::BoxMesh& mesh, const sem::GllRule& rule);

/// Advertised mesh metadata for `solver` with `num_blocks` ranks.  Derived
/// fields (vorticity, qcriterion) are intentionally not advertised:
/// checkpoints dump raw simulation state only, but rendering views may
/// request them by name through AddArray.
[[nodiscard]] sensei::MeshMetadata NekMeshMetadata(
    const nekrs::FlowSolver& solver, int num_blocks);

/// The device-side half of one array request: derived-field kernels, the
/// vector interleave pack, and the single D2H copy, landing in `staged`.
/// When `staged` already holds a uniquely-owned allocation of the right
/// size it is reused in place (the async pipeline's staging slots); any
/// other buffer is replaced by a fresh "staging" allocation, which is the
/// sync path.  Returns the component count of the captured array, or 0 for
/// an unknown name (or a disabled derived/temperature field).
///
/// Must run on the rank thread that owns the solver: device stats mutate on
/// every launch, and the derived-field computes are collective.
[[nodiscard]] int CaptureNekArray(nekrs::FlowSolver& solver,
                                  const std::string& name,
                                  bool derived_enabled, core::Buffer& staged);

class NekDataAdaptor final : public sensei::DataAdaptor {
 public:
  NekDataAdaptor() = default;

  /// Bind to a running solver (the paper's Initialize(nek_data)).
  void Initialize(nekrs::FlowSolver* solver);

  int GetNumberOfMeshes() override;
  sensei::MeshMetadata GetMeshMetadata(int id) override;
  std::shared_ptr<svtk::UnstructuredGrid> GetMesh(int id) override;
  bool AddArray(svtk::UnstructuredGrid& mesh, const std::string& name,
                svtk::Centering centering) override;
  void ReleaseData() override;

  /// Bytes currently held in host staging buffers (diagnostics/tests).
  [[nodiscard]] std::size_t StagingBytes() const;

  /// Enable/disable advertising derived fields (vorticity, qcriterion);
  /// enabled by default. Computing them costs nine gradient evaluations on
  /// the device per request.
  void SetDerivedFieldsEnabled(bool enabled) { derived_ = enabled; }
  [[nodiscard]] bool DerivedFieldsEnabled() const { return derived_; }

 private:
  nekrs::FlowSolver* solver_ = nullptr;
  bool derived_ = true;
  std::shared_ptr<svtk::UnstructuredGrid> mesh_;  // cached until ReleaseData
  std::vector<core::Buffer> staged_;  // shared views of adopted staging
};

}  // namespace nek_sensei
