#include "core/buffer.hpp"

#include <cstring>

#if defined(NSM_BUFFER_SENTINEL)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#endif

#include "instrument/memory_tracker.hpp"

namespace core {

namespace {
thread_local BufferStats g_stats;

#if defined(NSM_BUFFER_SENTINEL)

// Sentinel parameters.  32-byte canaries keep the data window 16-byte
// aligned (operator new[] alignment is preserved modulo the canary size).
constexpr std::size_t kCanaryBytes = 32;
constexpr std::byte kCanaryByte{0xCB};
constexpr std::byte kPoisonByte{0xDD};

[[noreturn]] void SentinelAbort(const char* violation, const char* what) {
  std::fprintf(stderr, "[buffer-sentinel] %s: %s\n", violation, what);
  std::fflush(stderr);
  std::abort();
}

// Registry of externally-adopted data pointers: adopting the same live
// storage twice means two keepalives both think they guard it — almost
// always a lifetime bug about to happen.
std::mutex& AdoptMutex() {
  static std::mutex m;
  return m;
}
std::set<const std::byte*>& AdoptedPointers() {
  static std::set<const std::byte*> s;
  return s;
}

void RegisterAdopt(const std::byte* data) {
  if (data == nullptr) return;
  std::lock_guard<std::mutex> lock(AdoptMutex());
  if (!AdoptedPointers().insert(data).second) {
    SentinelAbort("double-adopt",
                  "core::Buffer::Adopt of storage that is already adopted "
                  "by a live buffer");
  }
}

void UnregisterAdopt(const std::byte* data) {
  if (data == nullptr) return;
  std::lock_guard<std::mutex> lock(AdoptMutex());
  AdoptedPointers().erase(data);
}

#endif  // NSM_BUFFER_SENTINEL
}  // namespace

BufferStats& LocalBufferStats() { return g_stats; }

void ResetLocalBufferStats() { g_stats = {}; }

void CountCopy(std::size_t bytes) {
  if (bytes >= kFullFieldBytes) {
    ++g_stats.full_copies;
  } else {
    ++g_stats.small_copies;
  }
  g_stats.copied_bytes += bytes;
}

void CountAdoption() { ++g_stats.adoptions; }

void CountMove() { ++g_stats.moves; }

void CountDeviceStage() { ++g_stats.device_stages; }

namespace detail {

// One ref-counted byte block.  Either owns its storage (possibly reported to
// the allocating rank's MemoryTracker) or wraps external storage guarded by
// a keepalive handle.  Tracked bytes are released in the destructor, which
// must therefore run on the allocating rank's thread unless DetachTracking
// ran first (mpimini detaches on send).
struct Block {
  Block(std::string cat, std::size_t bytes)
      : category(std::move(cat)),
#if defined(NSM_BUFFER_SENTINEL)
        // Owned allocations grow guard canaries on both sides of the data
        // window; `data` points past the front canary.
        owned(new std::byte[bytes + 2 * kCanaryBytes]()),
        data(owned.get() + kCanaryBytes),
#else
        owned(new std::byte[bytes]()),
        data(owned.get()),
#endif
        size(bytes) {
#if defined(NSM_BUFFER_SENTINEL)
    std::memset(owned.get(), static_cast<int>(kCanaryByte), kCanaryBytes);
    std::memset(data + size, static_cast<int>(kCanaryByte), kCanaryBytes);
#endif
    if (!category.empty()) {
      tracker = instrument::CurrentTracker();
      if (tracker) tracker->Allocate(category, size);
    }
  }

  Block(std::string cat, std::vector<std::byte>&& taken)
      : category(std::move(cat)),
        vector_storage(std::move(taken)),
        data(vector_storage.data()),
        size(vector_storage.size()) {
    if (!category.empty()) {
      tracker = instrument::CurrentTracker();
      if (tracker) tracker->Allocate(category, size);
    }
  }

  Block(std::shared_ptr<const void> keep, const std::byte* external,
        std::size_t bytes)
      : keepalive(std::move(keep)),
        data(const_cast<std::byte*>(external)),
        size(bytes) {
#if defined(NSM_BUFFER_SENTINEL)
    RegisterAdopt(data);
    adopted = data;
#endif
  }

  ~Block() {
#if defined(NSM_BUFFER_SENTINEL)
    if (audit_handles.load(std::memory_order_relaxed) != 0) {
      SentinelAbort("refcount-overflow",
                    "core::Buffer block destroyed while handles still "
                    "reference it");
    }
    if (owned) {
      const std::byte* front = owned.get();
      const std::byte* back = data + size;
      for (std::size_t i = 0; i < kCanaryBytes; ++i) {
        if (front[i] != kCanaryByte || back[i] != kCanaryByte) {
          SentinelAbort("canary-stomp",
                        "core::Buffer guard bytes overwritten (out-of-window "
                        "write on an owned block)");
        }
      }
    }
    // Poison released owned storage so a stale pointer reads 0xDD garbage
    // loudly instead of yesterday's field data plausibly.
    if (size > 0 && (owned || !vector_storage.empty())) {
      std::memset(data, static_cast<int>(kPoisonByte), size);
    }
    UnregisterAdopt(adopted);
#endif
    Detach();
  }

  void Detach() {
    if (tracker) {
      tracker->Release(category, size);
      tracker = nullptr;
    }
  }

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  std::string category;
  std::unique_ptr<std::byte[]> owned;
  std::vector<std::byte> vector_storage;
  std::shared_ptr<const void> keepalive;
  std::byte* data = nullptr;
  std::size_t size = 0;
  instrument::MemoryTracker* tracker = nullptr;
#if defined(NSM_BUFFER_SENTINEL)
  /// Shadow handle count maintained by Buffer's audited special members;
  /// must agree with the shared_ptr count (0 by the time the block dies).
  std::atomic<long> audit_handles{0};
  const std::byte* adopted = nullptr;
#endif
};

}  // namespace detail

#if defined(NSM_BUFFER_SENTINEL)

void Buffer::SentinelAttach() {
  if (block_) block_->audit_handles.fetch_add(1, std::memory_order_relaxed);
}

void Buffer::SentinelDetach() {
  if (block_ &&
      block_->audit_handles.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    SentinelAbort("refcount-underflow",
                  "core::Buffer handle released more times than it was "
                  "attached");
  }
}

void Buffer::SentinelCheckUsable(const char* what) const {
  if (sentinel_state_ == detail::kHandleLive) return;
  if (sentinel_state_ == detail::kHandleMoved) {
    SentinelAbort("release-after-move", what);
  }
  SentinelAbort("refcount-underflow", what);
}

Buffer::Buffer(const Buffer& other)
    // Check *before* the member copy: on a destroyed source the shared_ptr
    // member is already gone and must not be touched.
    : block_((other.SentinelCheckUsable(
                  "core::Buffer copied from an invalid handle"),
              other.block_)),
      offset_(other.offset_),
      size_(other.size_) {
  SentinelAttach();
}

Buffer& Buffer::operator=(const Buffer& other) {
  other.SentinelCheckUsable("core::Buffer copy-assigned from an invalid "
                            "handle");
  if (this != &other) {
    SentinelDetach();
    block_ = other.block_;
    offset_ = other.offset_;
    size_ = other.size_;
    sentinel_state_ = detail::kHandleLive;
    SentinelAttach();
  }
  return *this;
}

Buffer::Buffer(Buffer&& other) noexcept
    : block_(std::move(other.block_)),
      offset_(other.offset_),
      size_(other.size_) {
  // Handle count transfers with the block: no attach/detach.
  other.offset_ = 0;
  other.size_ = 0;
  other.sentinel_state_ = detail::kHandleMoved;
}

Buffer& Buffer::operator=(Buffer&& other) noexcept {
  if (this != &other) {
    SentinelDetach();
    block_ = std::move(other.block_);
    offset_ = other.offset_;
    size_ = other.size_;
    sentinel_state_ = detail::kHandleLive;
    other.offset_ = 0;
    other.size_ = 0;
    other.sentinel_state_ = detail::kHandleMoved;
  }
  return *this;
}

Buffer::~Buffer() {
  // The brand is inspected before any member is destroyed: a double-destroy
  // aborts here, while the shared_ptr control block is still intact.
  if (sentinel_state_ == detail::kHandleDead) {
    SentinelAbort("refcount-underflow",
                  "core::Buffer handle destroyed twice");
  }
  SentinelDetach();
  sentinel_state_ = detail::kHandleDead;
}

#endif  // NSM_BUFFER_SENTINEL

Buffer::Buffer(std::string category, std::size_t bytes)
    : block_(std::make_shared<detail::Block>(std::move(category), bytes)),
      offset_(0),
      size_(bytes) {
  ++g_stats.allocations;
  g_stats.allocated_bytes += bytes;
#if defined(NSM_BUFFER_SENTINEL)
  SentinelAttach();
#endif
}

Buffer Buffer::CopyOf(std::string category, std::span<const std::byte> src) {
  Buffer out(std::move(category), src.size());
  if (!src.empty()) std::memcpy(out.data(), src.data(), src.size());
  CountCopy(src.size());
  return out;
}

Buffer Buffer::Adopt(std::shared_ptr<const void> keepalive,
                     const std::byte* data, std::size_t bytes) {
  Buffer out;
  out.block_ = std::make_shared<detail::Block>(std::move(keepalive), data,
                                               bytes);
  out.offset_ = 0;
  out.size_ = bytes;
#if defined(NSM_BUFFER_SENTINEL)
  out.SentinelAttach();
#endif
  CountAdoption();
  return out;
}

Buffer Buffer::TakeVector(std::string category,
                          std::vector<std::byte>&& bytes) {
  Buffer out;
  const std::size_t n = bytes.size();
  out.block_ = std::make_shared<detail::Block>(std::move(category),
                                               std::move(bytes));
  out.offset_ = 0;
  out.size_ = n;
#if defined(NSM_BUFFER_SENTINEL)
  out.SentinelAttach();
#endif
  ++g_stats.allocations;  // storage enters the plane, even if recycled
  CountMove();
  return out;
}

std::byte* Buffer::data() {
  return block_ ? block_->data + offset_ : nullptr;
}

const std::byte* Buffer::data() const {
  return block_ ? block_->data + offset_ : nullptr;
}

Buffer Buffer::Slice(std::size_t offset, std::size_t bytes) const {
  if (offset + bytes > size_) {
    throw std::out_of_range("core::Buffer::Slice out of range");
  }
  Buffer out;
  out.block_ = block_;
  out.offset_ = offset_ + offset;
  out.size_ = bytes;
#if defined(NSM_BUFFER_SENTINEL)
  out.SentinelAttach();
#endif
  CountAdoption();
  return out;
}

void Buffer::CopyIn(std::span<const std::byte> src, std::size_t offset) {
  if (offset + src.size() > size_) {
    throw std::out_of_range("core::Buffer::CopyIn out of range");
  }
  if (!src.empty()) std::memcpy(data() + offset, src.data(), src.size());
  CountCopy(src.size());
}

Buffer Buffer::Clone(std::string category) const {
  return CopyOf(std::move(category), bytes());
}

void Buffer::DetachTracking() {
#if defined(NSM_BUFFER_SENTINEL)
  // Detaching through a handle whose ownership already left (moved-from) is
  // the classic release-after-move: the caller thinks it still holds the
  // bytes it just sent to another rank.
  SentinelCheckUsable("core::Buffer::DetachTracking on an invalid handle");
#endif
  if (block_) block_->Detach();
}

const std::string& Buffer::Category() const {
  static const std::string kEmpty;
  return block_ ? block_->category : kEmpty;
}

long Buffer::UseCount() const { return block_ ? block_.use_count() : 0; }

void Buffer::CheckTyped(std::size_t alignment, std::size_t element) const {
  if (size_ % element != 0) {
    throw std::runtime_error("core::Buffer: size not a whole element count");
  }
  if (reinterpret_cast<std::uintptr_t>(data()) % alignment != 0) {
    throw std::runtime_error("core::Buffer: misaligned typed view");
  }
}

void BufferChain::Append(BufferView segment) {
  total_bytes_ += segment.size();
  if (!segment.empty()) segments_.push_back(std::move(segment));
}

void BufferChain::Append(BufferChain chain) {
  for (BufferView& segment : chain.segments_) Append(std::move(segment));
}

std::span<const std::byte> BufferChain::ContiguousBytes() const {
  if (segments_.empty()) return {};
  if (segments_.size() > 1) {
    throw std::runtime_error("core::BufferChain: not contiguous");
  }
  return segments_.front().bytes();
}

Buffer BufferChain::Pack(std::string category) const {
  Buffer out(std::move(category), total_bytes_);
  PackInto(out.bytes());
  return out;
}

void BufferChain::PackInto(std::span<std::byte> dst) const {
  if (dst.size() != total_bytes_) {
    throw std::runtime_error("core::BufferChain: pack size mismatch");
  }
  std::size_t at = 0;
  for (const BufferView& segment : segments_) {
    std::memcpy(dst.data() + at, segment.data(), segment.size());
    at += segment.size();
  }
  CountCopy(total_bytes_);
}

}  // namespace core
