#include "core/buffer.hpp"

#include <cstring>

#include "instrument/memory_tracker.hpp"

namespace core {

namespace {
thread_local BufferStats g_stats;
}  // namespace

BufferStats& LocalBufferStats() { return g_stats; }

void ResetLocalBufferStats() { g_stats = {}; }

void CountCopy(std::size_t bytes) {
  if (bytes >= kFullFieldBytes) {
    ++g_stats.full_copies;
  } else {
    ++g_stats.small_copies;
  }
  g_stats.copied_bytes += bytes;
}

void CountAdoption() { ++g_stats.adoptions; }

void CountMove() { ++g_stats.moves; }

void CountDeviceStage() { ++g_stats.device_stages; }

namespace detail {

// One ref-counted byte block.  Either owns its storage (possibly reported to
// the allocating rank's MemoryTracker) or wraps external storage guarded by
// a keepalive handle.  Tracked bytes are released in the destructor, which
// must therefore run on the allocating rank's thread unless DetachTracking
// ran first (mpimini detaches on send).
struct Block {
  Block(std::string cat, std::size_t bytes)
      : category(std::move(cat)),
        owned(new std::byte[bytes]()),
        data(owned.get()),
        size(bytes) {
    if (!category.empty()) {
      tracker = instrument::CurrentTracker();
      if (tracker) tracker->Allocate(category, size);
    }
  }

  Block(std::string cat, std::vector<std::byte>&& taken)
      : category(std::move(cat)),
        vector_storage(std::move(taken)),
        data(vector_storage.data()),
        size(vector_storage.size()) {
    if (!category.empty()) {
      tracker = instrument::CurrentTracker();
      if (tracker) tracker->Allocate(category, size);
    }
  }

  Block(std::shared_ptr<const void> keep, const std::byte* external,
        std::size_t bytes)
      : keepalive(std::move(keep)),
        data(const_cast<std::byte*>(external)),
        size(bytes) {}

  ~Block() { Detach(); }

  void Detach() {
    if (tracker) {
      tracker->Release(category, size);
      tracker = nullptr;
    }
  }

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  std::string category;
  std::unique_ptr<std::byte[]> owned;
  std::vector<std::byte> vector_storage;
  std::shared_ptr<const void> keepalive;
  std::byte* data = nullptr;
  std::size_t size = 0;
  instrument::MemoryTracker* tracker = nullptr;
};

}  // namespace detail

Buffer::Buffer(std::string category, std::size_t bytes)
    : block_(std::make_shared<detail::Block>(std::move(category), bytes)),
      offset_(0),
      size_(bytes) {
  ++g_stats.allocations;
  g_stats.allocated_bytes += bytes;
}

Buffer Buffer::CopyOf(std::string category, std::span<const std::byte> src) {
  Buffer out(std::move(category), src.size());
  if (!src.empty()) std::memcpy(out.data(), src.data(), src.size());
  CountCopy(src.size());
  return out;
}

Buffer Buffer::Adopt(std::shared_ptr<const void> keepalive,
                     const std::byte* data, std::size_t bytes) {
  Buffer out;
  out.block_ = std::make_shared<detail::Block>(std::move(keepalive), data,
                                               bytes);
  out.offset_ = 0;
  out.size_ = bytes;
  CountAdoption();
  return out;
}

Buffer Buffer::TakeVector(std::string category,
                          std::vector<std::byte>&& bytes) {
  Buffer out;
  const std::size_t n = bytes.size();
  out.block_ = std::make_shared<detail::Block>(std::move(category),
                                               std::move(bytes));
  out.offset_ = 0;
  out.size_ = n;
  ++g_stats.allocations;  // storage enters the plane, even if recycled
  CountMove();
  return out;
}

std::byte* Buffer::data() {
  return block_ ? block_->data + offset_ : nullptr;
}

const std::byte* Buffer::data() const {
  return block_ ? block_->data + offset_ : nullptr;
}

Buffer Buffer::Slice(std::size_t offset, std::size_t bytes) const {
  if (offset + bytes > size_) {
    throw std::out_of_range("core::Buffer::Slice out of range");
  }
  Buffer out;
  out.block_ = block_;
  out.offset_ = offset_ + offset;
  out.size_ = bytes;
  CountAdoption();
  return out;
}

void Buffer::CopyIn(std::span<const std::byte> src, std::size_t offset) {
  if (offset + src.size() > size_) {
    throw std::out_of_range("core::Buffer::CopyIn out of range");
  }
  if (!src.empty()) std::memcpy(data() + offset, src.data(), src.size());
  CountCopy(src.size());
}

Buffer Buffer::Clone(std::string category) const {
  return CopyOf(std::move(category), bytes());
}

void Buffer::DetachTracking() {
  if (block_) block_->Detach();
}

const std::string& Buffer::Category() const {
  static const std::string kEmpty;
  return block_ ? block_->category : kEmpty;
}

long Buffer::UseCount() const { return block_ ? block_.use_count() : 0; }

void Buffer::CheckTyped(std::size_t alignment, std::size_t element) const {
  if (size_ % element != 0) {
    throw std::runtime_error("core::Buffer: size not a whole element count");
  }
  if (reinterpret_cast<std::uintptr_t>(data()) % alignment != 0) {
    throw std::runtime_error("core::Buffer: misaligned typed view");
  }
}

void BufferChain::Append(BufferView segment) {
  total_bytes_ += segment.size();
  if (!segment.empty()) segments_.push_back(std::move(segment));
}

void BufferChain::Append(BufferChain chain) {
  for (BufferView& segment : chain.segments_) Append(std::move(segment));
}

std::span<const std::byte> BufferChain::ContiguousBytes() const {
  if (segments_.empty()) return {};
  if (segments_.size() > 1) {
    throw std::runtime_error("core::BufferChain: not contiguous");
  }
  return segments_.front().bytes();
}

Buffer BufferChain::Pack(std::string category) const {
  Buffer out(std::move(category), total_bytes_);
  PackInto(out.bytes());
  return out;
}

void BufferChain::PackInto(std::span<std::byte> dst) const {
  if (dst.size() != total_bytes_) {
    throw std::runtime_error("core::BufferChain: pack size mismatch");
  }
  std::size_t at = 0;
  for (const BufferView& segment : segments_) {
    std::memcpy(dst.data() + at, segment.data(), segment.size());
    at += segment.size();
  }
  CountCopy(total_bytes_);
}

}  // namespace core
