// nek_sensei bridge (Listing 3 of the paper): the glue that embeds SENSEI
// into NekRS — initializes the library, owns the data adaptor, and invokes
// the configured analyses as the simulation steps.
//
// One Bridge per rank (ranks are threads here, so no globals).
#pragma once

#include <memory>
#include <string>

#include "core/nek_data_adaptor.hpp"
#include "sensei/configurable_analysis.hpp"

namespace nek_sensei {

class Bridge {
 public:
  /// `solver` must outlive the bridge. `sensei_xml` is the runtime
  /// configuration (Listing 1 shaped); pass an empty <sensei/> to run with
  /// SENSEI in the loop but no analyses (the "No Transport" measurement
  /// point). `customize` may register extra factories (e.g. the in transit
  /// "adios" sender) before the XML is instantiated.
  Bridge(nekrs::FlowSolver& solver, const std::string& sensei_xml,
         const std::function<void(sensei::ConfigurableAnalysis&)>& customize =
             {});

  /// Invoke after every solver step; runs due analyses. Returns false if
  /// any analysis failed.
  bool Update();

  /// Flush all analyses (closes streams, writes trailing output).
  void Finalize();

  [[nodiscard]] sensei::ConfigurableAnalysis& Analysis() { return analysis_; }
  [[nodiscard]] NekDataAdaptor& Data() { return data_; }

 private:
  nekrs::FlowSolver& solver_;
  NekDataAdaptor data_;
  sensei::ConfigurableAnalysis analysis_;
  bool finalized_ = false;
};

}  // namespace nek_sensei
