// nek_sensei bridge (Listing 3 of the paper): the glue that embeds SENSEI
// into NekRS — initializes the library, owns the data adaptor, and invokes
// the configured analyses as the simulation steps.
//
// One Bridge per rank (ranks are threads here, so no globals).
//
// Execution modes (DESIGN.md §3b): with the default <pipeline mode="sync"/>
// (or no <pipeline> element) Update runs the analyses inline on the rank
// thread — byte-identical to the historical behaviour.  With
// <pipeline mode="async" depth="N"/> the bridge owns an AsyncPipeline: it
// splits off a dedicated analysis communicator (same rank numbering, so all
// per-rank output filenames are unchanged), snapshots the due fields at the
// step boundary, and runs the whole update path on a per-rank worker thread
// while the solver takes the next step.
#pragma once

#include <memory>
#include <string>

#include "core/async_pipeline.hpp"
#include "core/nek_data_adaptor.hpp"
#include "sensei/configurable_analysis.hpp"

namespace nek_sensei {

class Bridge {
 public:
  /// `solver` must outlive the bridge. `sensei_xml` is the runtime
  /// configuration (Listing 1 shaped); pass an empty <sensei/> to run with
  /// SENSEI in the loop but no analyses (the "No Transport" measurement
  /// point). `customize` may register extra factories (e.g. the in transit
  /// "adios" sender) before the XML is instantiated.
  Bridge(nekrs::FlowSolver& solver, const std::string& sensei_xml,
         const std::function<void(sensei::ConfigurableAnalysis&)>& customize =
             {});

  /// Invoke after every solver step; runs due analyses. Returns false if
  /// any analysis failed.  Async mode: captures the snapshot and returns
  /// once enqueued (the report is sticky — false once any offloaded update
  /// has failed); worker errors are rethrown here or in Finalize.
  bool Update();

  /// Flush all analyses (closes streams, writes trailing output).  Async
  /// mode: drains the pipeline first, so every submitted update completes.
  void Finalize();

  [[nodiscard]] sensei::ConfigurableAnalysis& Analysis() { return analysis_; }
  [[nodiscard]] NekDataAdaptor& Data() { return data_; }

  /// True when updates run on the per-rank worker thread.
  [[nodiscard]] bool Async() const { return pipeline_ != nullptr; }

  /// Cumulative wall seconds of offloaded updates so far, or -1.0 in sync
  /// mode (the heartbeat's "offloaded" column sentinel).  Safe to read from
  /// the rank thread while the worker runs.
  [[nodiscard]] double OffloadedSeconds() const {
    return pipeline_ ? pipeline_->OffloadedSeconds() : -1.0;
  }

  /// The worker thread's host high-water mark (0 in sync mode or before
  /// Finalize); reports add it to the rank's own peak.
  [[nodiscard]] std::size_t WorkerHostPeakBytes() const {
    return pipeline_ ? pipeline_->WorkerHostPeakBytes() : 0;
  }

 private:
  nekrs::FlowSolver& solver_;
  /// Parsed before analysis_ so the constructor can pick its communicator.
  sensei::PipelineConfig pipeline_config_;
  /// Async: a dedicated Split of the stepping communicator (identical rank
  /// numbering) so worker-side collectives never share a mailbox with the
  /// solver's.  Sync: the stepping communicator itself.
  mpimini::Comm analysis_comm_;
  NekDataAdaptor data_;
  sensei::ConfigurableAnalysis analysis_;
  std::unique_ptr<AsyncPipeline> pipeline_;
  bool finalized_ = false;
};

}  // namespace nek_sensei
