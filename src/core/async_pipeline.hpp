// Asynchronous in situ executor (DESIGN.md §3b).
//
// The sync bridge runs the whole SENSEI update — grid build, rendering,
// compositing, checkpoint writes, SST marshal+send — inline on the rank
// thread, so every analysis second lands on the solver's critical path
// (the Catalyst overhead of Fig 2).  The async pipeline moves everything
// that does not need the device off that path: at each triggering step
// boundary the rank thread captures the due fields with the single
// mandatory D2H copy into a bounded set of staging slots (depth 2 = double
// buffering), then hands the snapshot to a dedicated per-rank worker
// thread that runs the full Bridge::Update over it while the rank starts
// the next solver step.
//
// Ownership model (what keeps this data-race-free):
//  - Slot payloads are exchanged by message passing: the mutex-guarded
//    in-flight flags are the mailbox, and their transitions provide the
//    happens-before edge.  The rank thread owns a slot from the moment the
//    flag reads false until it enqueues the index; the worker owns it
//    until it clears the flag.
//  - All device work (derived-field kernels, the pack kernel, the D2H)
//    stays on the rank thread: device launch stats and the derived-field
//    collectives are rank-owned.  The worker touches host memory only.
//  - The worker runs under its own mpimini::RankEnv (same rank id, its own
//    MemoryTracker/MetricsRegistry, no tracer) installed via
//    WorkerEnvScope, so the per-rank single-owner structures are never
//    shared between the two threads; the worker's attribution is folded
//    back into the rank registry/stats at Shutdown, after the join.
//  - Analyses execute against a dedicated analysis communicator (a Split
//    of the stepping communicator with identical rank numbering), so the
//    worker's collectives can never interleave with the rank thread's
//    solver collectives on one mailbox.
//
// Backpressure: Submit blocks (timed as pipeline.queue_wait_seconds) when
// every slot is in flight — including when the in transit SST staging
// queue stalls the worker, which folds transport backpressure into slot
// reuse instead of growing an unbounded queue.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/buffer.hpp"
#include "core/lock_ranks.hpp"
#include "core/nek_data_adaptor.hpp"
#include "core/thread_annotations.hpp"
#include "instrument/metrics.hpp"
#include "instrument/provenance.hpp"
#include "mpimini/runtime.hpp"
#include "sensei/configurable_analysis.hpp"

namespace nek_sensei {

/// Trace-lane tid offset for async worker threads: rank r's worker records
/// as tid r + kWorkerTidOffset so worker lanes sort below the rank lanes in
/// the merged timeline without colliding with any real rank id.
inline constexpr int kWorkerTidOffset = 1000;

/// DataAdaptor over one captured snapshot: serves the analyses on the
/// worker thread from host staging buffers the rank thread filled at the
/// step boundary.  Geometry (grid, metadata) is read from the solver's
/// const mesh/rule/config, which the solver never mutates while stepping.
class SnapshotDataAdaptor final : public sensei::DataAdaptor {
 public:
  struct Field {
    std::string name;
    /// Component count, or 0 when capture found no such array (the
    /// AddArray -> false path of the live adaptor, preserved).
    int components = 0;
    /// Host staging slot; the allocation is reused across triggers.
    core::Buffer data;
  };

  SnapshotDataAdaptor(nekrs::FlowSolver& solver, mpimini::Comm comm);

  /// Borrow the current job's captured fields (owned by the slot).
  void SetSnapshot(const std::vector<Field>* fields) { fields_ = fields; }

  int GetNumberOfMeshes() override { return 1; }
  sensei::MeshMetadata GetMeshMetadata(int id) override;
  std::shared_ptr<svtk::UnstructuredGrid> GetMesh(int id) override;
  bool AddArray(svtk::UnstructuredGrid& mesh, const std::string& name,
                svtk::Centering centering) override;
  void ReleaseData() override;

 private:
  nekrs::FlowSolver* solver_;
  const std::vector<Field>* fields_ = nullptr;
  std::shared_ptr<svtk::UnstructuredGrid> mesh_;  // rebuilt per trigger
};

/// Per-rank bounded-depth async executor.  Constructed on the rank thread
/// (which becomes the submitting side); all public methods are rank-thread
/// only except the const atomic readers.
class AsyncPipeline {
 public:
  /// `analysis` must already be initialized and must have been constructed
  /// over `analysis_comm` (the dedicated Split); `live_data` supplies the
  /// derived-fields switch so SetDerivedFieldsEnabled keeps working.
  AsyncPipeline(nekrs::FlowSolver& solver,
                sensei::ConfigurableAnalysis& analysis,
                const NekDataAdaptor& live_data, mpimini::Comm analysis_comm,
                int depth);
  ~AsyncPipeline();

  AsyncPipeline(const AsyncPipeline&) = delete;
  AsyncPipeline& operator=(const AsyncPipeline&) = delete;

  /// Snapshot the fields due at `step` and enqueue the update; returns
  /// immediately unless every slot is in flight.  No-op (and no slot
  /// traffic) when nothing is due — matching the sync no-op path.  The
  /// return value is sticky health, not this step's result: false once any
  /// offloaded Execute has failed.  Worker exceptions are rethrown here.
  bool Submit(int step, double time);

  /// Drain the queue, run ConfigurableAnalysis::Finalize as the last
  /// worker job (single-owner bindings stay valid), join the worker, and
  /// fold its attribution into the calling rank: metrics registry
  /// (MergeFrom), buffer stats, pipeline.overlap_seconds and
  /// insitu.offloaded_share.  Idempotent; rethrows a pending worker error.
  void Shutdown();

  /// Cumulative wall seconds of offloaded updates (async counterpart of
  /// bridge.update_seconds).  Readable from the rank thread at any time.
  [[nodiscard]] double OffloadedSeconds() const {
    return static_cast<double>(offloaded_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  /// The worker's host high-water mark; meaningful after Shutdown.
  [[nodiscard]] std::size_t WorkerHostPeakBytes() const {
    return joined_ ? worker_env_.memory.HostPeakBytes() : 0;
  }

  /// Rank-thread seconds spent blocked waiting for a free slot.
  [[nodiscard]] double QueueWaitSeconds() const { return queue_wait_seconds_; }

  [[nodiscard]] int Depth() const { return static_cast<int>(slots_.size()); }

 private:
  struct Slot {
    int step = 0;
    double time = 0.0;
    /// Causal context captured at Submit: the worker re-installs it before
    /// Execute so SST/checkpoint writes stamp the *originating* step even
    /// though they run `depth` steps behind the solver.
    instrument::StepProvenance provenance;
    std::vector<SnapshotDataAdaptor::Field> fields;
  };

  /// Rank thread: device capture of the arrays due at `step` into `slot`,
  /// reusing the slot's buffers by array name.
  void CaptureSnapshot(Slot& slot, int step, double time);

  void WorkerMain();

  /// Rethrow a worker-side exception on the rank thread, if one is parked.
  void RethrowWorkerError();

  nekrs::FlowSolver& solver_;
  sensei::ConfigurableAnalysis& analysis_;
  const NekDataAdaptor& live_data_;
  mpimini::Comm analysis_comm_;

  /// Slot payloads: deliberately unannotated — ownership alternates between
  /// the two threads through the in_flight_ mailbox below (message
  /// passing), never concurrent access.
  std::vector<Slot> slots_;
  std::size_t next_slot_ = 0;  ///< rank thread only: round-robin cursor

  core::Mutex mutex_{core::lock_rank::kCoreAsyncPipelineMutex};
  core::CondVar slot_freed_cv_;  ///< worker -> rank: a slot went idle
  core::CondVar work_cv_;        ///< rank -> worker: job queued / drain
  std::vector<std::uint8_t> in_flight_ NSM_GUARDED_BY(mutex_);
  std::deque<std::size_t> queue_ NSM_GUARDED_BY(mutex_);
  bool drain_requested_ NSM_GUARDED_BY(mutex_) = false;
  std::exception_ptr worker_error_ NSM_GUARDED_BY(mutex_);

  std::atomic<bool> execute_failed_{false};
  std::atomic<std::int64_t> offloaded_ns_{0};

  /// The worker's identity: same rank id, own single-owner structures.
  mpimini::RankEnv worker_env_;
  /// Published by the worker right before it exits; the join makes them
  /// safe to read from the rank thread in Shutdown.
  core::BufferStats worker_buffer_stats_;
  instrument::MetricsSnapshot worker_metrics_;

  double queue_wait_seconds_ = 0.0;  ///< rank thread only
  std::thread worker_;
  bool joined_ = false;  ///< rank thread only
};

}  // namespace nek_sensei
