// Jacobi-preconditioned conjugate-gradient solver for the SEM Helmholtz
// system (h1 A + h0 B) x = b, the workhorse of every implicit substep
// (viscous velocity solve, pressure Poisson, scalar diffusion) — the NekRS
// elliptic solver reduced to its algorithmic core.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "instrument/memory_tracker.hpp"
#include "mpimini/comm.hpp"
#include "sem/gather_scatter.hpp"
#include "sem/operators.hpp"

namespace nekrs {

struct HelmholtzResult {
  int iterations = 0;
  double residual = 0.0;  ///< final assembled 2-norm of the residual
  bool converged = false;
};

/// Preconditioner interface for the CG solver: z = M^{-1} r. `r` is the
/// assembled masked residual; implementations must return an assembled
/// (continuous, masked) z and be symmetric positive definite.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void Apply(double h1, double h0, std::span<const double> r,
                     std::span<double> z) = 0;
};

class HelmholtzSolver {
 public:
  /// `ops` and `gs` must outlive the solver and describe the same mesh.
  HelmholtzSolver(mpimini::Comm comm, const sem::ElementOperators& ops,
                  const sem::GatherScatter& gs);

  /// Solution-projection acceleration (NekRS's pressure "projection"):
  /// keeps up to `max_vectors` A-orthonormal previous solution increments
  /// and projects each new right-hand side onto their span before CG, which
  /// typically cuts the iteration count severalfold in time-stepping where
  /// consecutive solves are similar. One Projection instance belongs to one
  /// (h1, h0, mask) solve family.
  class Projection {
   public:
    Projection(std::size_t ndofs, int max_vectors);

    [[nodiscard]] int Size() const { return count_; }
    void Clear() { count_ = 0; }

   private:
    friend class HelmholtzSolver;
    std::size_t ndofs_;
    int max_vectors_;
    int count_ = 0;
    // Basis vectors and their operator images, packed contiguously
    // (vector k occupies [k*ndofs, (k+1)*ndofs)).
    instrument::TrackedBuffer<double> xs_;
    instrument::TrackedBuffer<double> axs_;
  };

  struct Options {
    double h1 = 1.0;        ///< stiffness coefficient (viscosity / 1)
    double h0 = 0.0;        ///< mass coefficient (BDF b0 / 0 for Poisson)
    double tolerance = 1e-8;///< tolerance on the residual norm
    /// Optional preconditioner; nullptr = the built-in Jacobi diagonal.
    Preconditioner* preconditioner = nullptr;
    /// When true the tolerance is relative to the initial residual norm
    /// (with `tolerance` also acting as an absolute floor), which keeps the
    /// iteration count independent of problem size under weak scaling.
    bool relative_tolerance = false;
    int max_iterations = 500;
    bool remove_mean = false;  ///< project out constants (singular Neumann)
  };

  /// Solve (h1 A + h0 B) x = rhs.
  ///
  /// `rhs` is the unassembled local weak-form right-hand side (B-weighted,
  /// per element copy).  `x` enters as the initial guess carrying any
  /// inhomogeneous Dirichlet values at nodes where mask == 0, and leaves as
  /// the solution; masked nodes keep their boundary values exactly.
  /// Collective over the communicator. `projection`, when given, seeds the
  /// solve from the recorded history and is updated with the new solution.
  HelmholtzResult Solve(const Options& options, std::span<const double> rhs,
                        std::span<double> x, std::span<const double> mask,
                        Projection* projection = nullptr);

 private:
  /// w = mask . QQ^T (h1 A_L + h0 B) x; x must be continuous.
  void ApplyOperator(double h1, double h0, std::span<const double> x,
                     std::span<const double> mask, std::span<double> w);

  /// B-weighted mean over the domain (uses quadrature partition of unity).
  double WeightedMean(std::span<const double> v);

  /// Returns the assembled Jacobi diagonal for (h1, h0, mask), building it
  /// (one gs collective) only on a cache miss.  The miss decision is
  /// AllReduce'd so the collective rebuild cannot diverge across ranks even
  /// if mask contents happen to match on some ranks only.
  std::span<const double> JacobiDiag(double h1, double h0,
                                     std::span<const double> mask);

  mpimini::Comm comm_;
  const sem::ElementOperators& ops_;
  const sem::GatherScatter& gs_;
  double volume_ = 0.0;

  // CG work vectors live in "device" memory conceptually; tracked so the
  // GPU-side footprint is attributable.
  instrument::TrackedBuffer<double> r_, z_, p_, w_;

  // Jacobi-diagonal cache: one entry per recent solve family
  // (h1, h0, mask contents), LRU-evicted.  A time step cycles through the
  // velocity, scalar, and pressure families every step; caching all of them
  // removes the per-solve diagonal rebuild and its gs_.Sum collective.
  struct DiagEntry {
    double h1 = 0.0;
    double h0 = 0.0;
    std::vector<double> mask;  // contents the entry was built for
    instrument::TrackedBuffer<double> diag;
    std::uint64_t last_used = 0;
    DiagEntry(std::size_t n) : mask(n), diag("device", n) {}
  };
  static constexpr std::size_t kMaxDiagEntries = 4;
  std::vector<DiagEntry> diag_cache_;
  std::uint64_t diag_clock_ = 0;
};

}  // namespace nekrs
