// Two-level p-multigrid preconditioner — the role NekRS's pMG + coarse-grid
// solve plays for the pressure Poisson equation.
//
// Fine level: the solver's order-N spectral element space. Coarse level:
// order-1 (trilinear) elements on the same mesh — the classic "p-coarsening
// to vertices". One symmetric V-cycle per application:
//
//   pre-smooth   : damped Jacobi on the fine level
//   coarse solve : Jacobi-CG on the vertex problem (tiny, loose tolerance)
//   post-smooth  : damped Jacobi
//
// The cycle is symmetric positive definite, so it is a valid CG
// preconditioner. Its payoff is weak-scaling: the coarse solve carries the
// global (domain-extent) information that makes plain Jacobi-CG iteration
// counts grow with domain size.
#pragma once

#include <memory>

#include "nekrs/helmholtz.hpp"
#include "sem/box_mesh.hpp"
#include "sem/gather_scatter.hpp"
#include "sem/operators.hpp"

namespace nekrs {

class MultigridPreconditioner final : public Preconditioner {
 public:
  struct Options {
    int smooth_sweeps = 2;        ///< damped-Jacobi sweeps pre and post
    double jacobi_weight = 0.8;   ///< damping factor
    double coarse_tolerance = 0.05;  ///< relative tolerance of coarse CG
    int coarse_max_iterations = 200;
    bool remove_mean = false;  ///< singular (pure-Neumann) problems
  };

  /// Collective constructor. `spec` must be the fine mesh's spec;
  /// `dirichlet` the face flags of the solve family this preconditioner
  /// serves (all false for the pressure Poisson problem).
  MultigridPreconditioner(mpimini::Comm comm, const sem::BoxMeshSpec& spec,
                          int rank, int nranks,
                          const sem::ElementOperators& fine_ops,
                          const sem::GatherScatter& fine_gs,
                          const std::array<bool, 6>& dirichlet,
                          Options options);

  /// z = V-cycle(r). Collective.
  void Apply(double h1, double h0, std::span<const double> r,
             std::span<double> z) override;

 private:
  void Restrict(std::span<const double> fine, std::span<double> coarse) const;
  void Prolong(std::span<const double> coarse, std::span<double> fine) const;
  /// w = mask (QQ^T (h1 A + h0 B) x) on the fine level.
  void FineOperator(double h1, double h0, std::span<const double> x,
                    std::span<double> w);

  mpimini::Comm comm_;
  Options options_;
  const sem::ElementOperators& fine_ops_;
  const sem::GatherScatter& fine_gs_;
  std::vector<double> fine_mask_;

  // Coarse (order-1) level.
  sem::GllRule coarse_rule_;
  sem::BoxMesh coarse_mesh_;
  sem::ElementOperators coarse_ops_;
  std::unique_ptr<sem::GatherScatter> coarse_gs_;
  std::unique_ptr<HelmholtzSolver> coarse_solver_;
  std::vector<double> coarse_mask_;

  // Transfer matrices: prolongation (np x 2 per direction) and its
  // transpose.
  std::vector<double> prolong_1d_;   // np x 2
  std::vector<double> restrict_1d_;  // 2 x np

  // Scratch.
  std::vector<double> fine_tmp_, fine_res_;
  std::vector<double> coarse_rhs_, coarse_sol_;
  std::vector<double> fine_diag_;
  double diag_h1_ = -1.0, diag_h0_ = -1.0;  // cached diagonal coefficients
};

}  // namespace nekrs
