// p-multigrid preconditioner — the role NekRS's pMG + coarse-grid solve
// plays for the pressure Poisson equation.
//
// The ladder coarsens in polynomial order on the same element mesh:
// N -> N/2 -> ... -> 1, ending at the trilinear (vertex) space.  Each level
// owns its GLL rule, ElementOperators, GatherScatter, Dirichlet mask, and
// 1-D transfer matrices to the next coarser level; one symmetric V-cycle
// per application:
//
//   smooth       : damped Jacobi or Chebyshev-accelerated Jacobi
//   restrict     : multiplicity-unassemble + P^T, level by level
//   coarse solve : Jacobi-CG on the vertex problem (tiny, loose tolerance)
//   prolong      : P, add masked correction
//   smooth       : symmetric with the pre-smoothing
//
// Chebyshev smoothing follows nekRS: a degree-k polynomial in D^-1 A with
// eigenvalue bounds [lambda_max/10, 1.1 lambda_max] estimated by a few
// power iterations per level whenever (h1, h0) changes.
//
// Mixed precision follows nekRS's pfloat/dfloat split: with
// Precision::kFloat the entire V-cycle — smoother state, level operators,
// residuals, transfers, gather-scatter exchanges — runs in float, while the
// outer CG (and the coarse-grid CG) stay double.  The cycle is a fixed
// linear operation either way, so it remains a valid CG preconditioner.
//
// The legacy configuration (Smoother::kJacobi, Precision::kDouble,
// max_levels = 2 — the Options defaults) reproduces the historical
// two-level cycle bit-for-bit.
#pragma once

#include <memory>
#include <type_traits>

#include "nekrs/helmholtz.hpp"
#include "sem/box_mesh.hpp"
#include "sem/gather_scatter.hpp"
#include "sem/operators.hpp"

namespace nekrs {

class MultigridPreconditioner final : public Preconditioner {
 public:
  enum class Smoother {
    kJacobi,     ///< fixed-weight damped Jacobi sweeps (legacy)
    kChebyshev,  ///< degree-k Chebyshev acceleration of Jacobi (nekRS)
  };
  enum class Precision {
    kDouble,  ///< dfloat everywhere (legacy, bit-identical mode)
    kFloat,   ///< pfloat V-cycle under the double outer Krylov
  };
  enum class CoarseMode {
    kIterative,  ///< Jacobi-CG on the vertex problem (legacy)
    /// Redundant dense Cholesky of the assembled global vertex operator
    /// (the role nekRS's direct/AMG coarse solve plays): every rank builds
    /// and factors the same tiny matrix once per (h1, h0), and each cycle's
    /// coarse solve is then one AllReduce plus two triangular sweeps —
    /// instead of an iteration of latency-bound collectives.  Falls back
    /// to kIterative when the vertex space exceeds the dense-size cap.
    kDirect,
  };

  struct Options {
    Smoother smoother = Smoother::kJacobi;
    Precision precision = Precision::kDouble;
    /// Number of ladder levels including the order-1 coarse level;
    /// 2 = the legacy single coarse jump, 0 = the full N -> N/2 -> 1 ladder.
    int max_levels = 2;
    int chebyshev_degree = 2;  ///< smoother polynomial degree (>= 1)
    /// Power-iteration count for the D^-1 A spectral-radius estimate.
    /// Chebyshev AMPLIFIES modes beyond its upper bound, so an
    /// under-converged estimate poisons the smoother; 30 iterations of
    /// setup-only cost keeps the 1.1x safety margin honest.
    int power_iterations = 30;
    int smooth_sweeps = 2;     ///< damped-Jacobi sweeps pre and post
    double jacobi_weight = 0.8;      ///< damping factor
    double coarse_tolerance = 0.05;  ///< relative tolerance of coarse CG
    int coarse_max_iterations = 200;
    CoarseMode coarse_mode = CoarseMode::kIterative;
    bool remove_mean = false;  ///< singular (pure-Neumann) problems
  };

  /// Collective constructor. `spec` must be the fine mesh's spec;
  /// `dirichlet` the face flags of the solve family this preconditioner
  /// serves (all false for the pressure Poisson problem).
  MultigridPreconditioner(mpimini::Comm comm, const sem::BoxMeshSpec& spec,
                          int rank, int nranks,
                          const sem::ElementOperators& fine_ops,
                          const sem::GatherScatter& fine_gs,
                          const std::array<bool, 6>& dirichlet,
                          Options options);

  /// z = V-cycle(r). Collective.
  void Apply(double h1, double h0, std::span<const double> r,
             std::span<double> z) override;

  [[nodiscard]] int NumLevels() const {
    return static_cast<int>(levels_.size());
  }
  [[nodiscard]] int LevelOrder(int level) const {
    return levels_[static_cast<std::size_t>(level)].order;
  }
  /// Spectral-radius estimate of D^-1 A on a level (Chebyshev smoother
  /// only; 0 before the first Apply).
  [[nodiscard]] double LevelLambdaMax(int level) const {
    return levels_[static_cast<std::size_t>(level)].lambda_max;
  }

 private:
  /// Per-precision V-cycle state of one level.  For double the operator
  /// data (derivative matrices, geometric factors, mass, multiplicity)
  /// lives in the level's ElementOperators/GatherScatter and only the
  /// cycle vectors are held here; for float everything is down-converted
  /// once at construction.
  template <typename T>
  struct LevelData {
    // Down-converted operator data (float mode only; empty for double).
    std::vector<T> deriv, deriv_t;  // np x np
    std::vector<T> g11, g12, g13, g22, g23, g33, mass;
    std::vector<T> mask, mult;
    std::vector<T> restrict_1d, prolong_1d;  // to/from next coarser level
    // Assembled Jacobi diagonal for the cached (h1, h0).
    std::vector<T> diag;
    // Cycle vectors: rhs, solution, residual, smoother direction, operator
    // scratch.
    std::vector<T> r, z, res, d, tmp;
    // Fused-Laplacian (6 np^3) and Interp3D workspaces, per-element
    // transfer staging.
    std::vector<T> lap_scratch, interp_scratch, local_in, local_out;
  };

  struct Level {
    int order = 0;
    int np = 0;
    int nel = 0;
    std::size_t ndofs = 0;
    std::size_t per_el = 0;
    std::unique_ptr<sem::BoxMesh> mesh;
    std::unique_ptr<sem::ElementOperators> ops_owned;  // null on level 0
    const sem::ElementOperators* ops = nullptr;
    std::unique_ptr<sem::GatherScatter> gs_owned;  // null on level 0
    const sem::GatherScatter* gs = nullptr;
    std::vector<std::int64_t> gids;
    std::vector<double> mask;
    // 1-D transfers to the NEXT coarser level (absent on the last level):
    // prolong is np x np_next, restrict its transpose.
    std::vector<double> restrict_1d, prolong_1d;
    std::vector<double> diag;  // assembled Jacobi diagonal (double master)
    double lambda_max = 0.0;
    LevelData<double> dbl;
    LevelData<float> flt;
  };

  template <typename T>
  LevelData<T>& Data(Level& level) {
    if constexpr (std::is_same_v<T, double>) {
      return level.dbl;
    } else {
      return level.flt;
    }
  }

  /// w = mask (QQ^T (h1 A + h0 B) x) on `level`, in precision T.
  template <typename T>
  void LevelOperator(Level& level, double h1, double h0,
                     std::span<const T> x, std::span<T> w);

  /// In-place smoothing of A z = r on `level`; `first` means z is to be
  /// treated as zero (pre-smoothing), saving one operator application.
  template <typename T>
  void Smooth(Level& level, double h1, double h0, bool first);

  template <typename T>
  void RestrictTo(Level& fine, Level& coarse);
  template <typename T>
  void ProlongFrom(Level& coarse, Level& fine);

  template <typename T>
  void Cycle(std::size_t l, double h1, double h0);

  template <typename T>
  void CoarseSolve(double h1, double h0);

  /// Assemble, regularize (singular problems), and Cholesky-factor the
  /// global vertex operator for CoarseMode::kDirect.  Collective; leaves
  /// coarse_direct_ok_ false (iterative fallback) past the size cap or on
  /// factorization failure.
  void BuildCoarseDirect(double h1, double h0);

  /// One direct coarse solve: assembled dual AllReduce, triangular sweeps,
  /// nullspace projection for singular problems. Collective.
  void CoarseSolveDirect();

  /// Rebuild per-level diagonals (and Chebyshev eigenvalue bounds) when the
  /// Helmholtz coefficients change. Collective.
  void EnsureCoefficients(double h1, double h0);

  /// Power iteration on D^-1 A (double, deterministic gid-based seed).
  double EstimateLambdaMax(Level& level, double h1, double h0);

  mpimini::Comm comm_;
  Options options_;
  const sem::ElementOperators& fine_ops_;
  const sem::GatherScatter& fine_gs_;

  std::vector<Level> levels_;
  std::unique_ptr<HelmholtzSolver> coarse_solver_;

  // Coarse-solve staging (double regardless of cycle precision).
  std::vector<double> coarse_rhs_, coarse_sol_;

  // Direct coarse solve state (CoarseMode::kDirect): the in-place Cholesky
  // factor of the assembled global vertex operator, the assembled lumped
  // mass (nullspace weight), the 0/1 Dirichlet row mask, and the global
  // right-hand-side staging vector.
  static constexpr std::size_t kDirectCoarseMaxDofs = 2048;
  std::size_t coarse_nglobal_ = 0;
  bool coarse_direct_ok_ = false;
  bool coarse_singular_ = false;
  std::vector<double> coarse_chol_;
  std::vector<double> coarse_weight_;
  std::vector<double> coarse_rowmask_;
  std::vector<double> coarse_global_;

  double cached_h1_ = -1.0, cached_h0_ = -1.0;
  bool coefficients_ready_ = false;
};

}  // namespace nekrs
