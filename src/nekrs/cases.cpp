#include "nekrs/cases.hpp"

#include <cmath>
#include <numbers>

namespace nekrs::cases {

namespace {

// Small deterministic LCG so pebble layouts are identical on every rank and
// every run without touching global random state.
class Lcg {
 public:
  explicit Lcg(unsigned seed) : state_(seed ? seed : 1u) {}
  double NextUnit() {
    state_ = 1664525u * state_ + 1013904223u;
    return static_cast<double>(state_ >> 8) /
           static_cast<double>(1u << 24);
  }

 private:
  unsigned state_;
};

}  // namespace

PebbleLayout MakePebbleLayout(const PebbleBedOptions& options) {
  PebbleLayout layout;
  // Place pebbles on the densest cubic lattice that fits pebble_count, then
  // jitter them so the flow is not trivially symmetric.
  const int per_axis = static_cast<int>(
      std::ceil(std::cbrt(static_cast<double>(options.pebble_count))));
  const double cell = 1.0 / per_axis;
  layout.radius = options.pebble_radius > 0.0 ? options.pebble_radius
                                              : 0.30 * cell;
  Lcg rng(options.seed);
  const double jitter = 0.5 * (cell - 2.0 * layout.radius);
  for (int k = 0; k < per_axis; ++k) {
    for (int j = 0; j < per_axis; ++j) {
      for (int i = 0; i < per_axis; ++i) {
        if (static_cast<int>(layout.centers.size()) >= options.pebble_count) {
          return layout;
        }
        const double cx = (i + 0.5) * cell + jitter * (rng.NextUnit() - 0.5);
        const double cy = (j + 0.5) * cell + jitter * (rng.NextUnit() - 0.5);
        const double cz = (k + 0.5) * cell + jitter * (rng.NextUnit() - 0.5);
        layout.centers.push_back({cx, cy, cz});
      }
    }
  }
  return layout;
}

FlowConfig PebbleBedCase(const PebbleBedOptions& options) {
  FlowConfig config;
  config.mesh.order = options.order;
  config.mesh.elements = options.elements;
  config.mesh.length = {1.0, 1.0, 1.0};
  // Streamwise (z) periodic channel with no-slip side walls.
  config.mesh.periodic = {false, false, true};
  config.velocity_dirichlet = {true, true, true, true, false, false};
  config.temperature_dirichlet = {true, true, true, true, false, false};

  config.dt = options.dt;
  config.viscosity = options.viscosity;
  config.conductivity = options.viscosity;  // unit Prandtl
  config.solve_temperature = true;
  config.body_force = {0.0, 0.0, options.driving_force};
  config.filter_strength = 0.05;
  config.filter_modes = 1;

  const PebbleLayout layout = MakePebbleLayout(options);
  const double r2 = layout.radius * layout.radius;
  auto inside = [layout, r2](double x, double y, double z) {
    for (const auto& c : layout.centers) {
      const double dx = x - c[0];
      const double dy = y - c[1];
      const double dz = z - c[2];
      if (dx * dx + dy * dy + dz * dz < r2) return true;
    }
    return false;
  };
  const double drag = options.drag;
  config.brinkman = [inside, drag](double x, double y, double z) {
    return inside(x, y, z) ? drag : 0.0;
  };
  const double heating = options.heating;
  config.heat_source = [inside, heating](double x, double y, double z) {
    return inside(x, y, z) ? heating : 0.0;
  };
  config.initial_condition = [](double, double, double, double& u, double& v,
                                double& w, double& T) {
    u = 0.0;
    v = 0.0;
    w = 0.1;  // mild initial through-flow
    T = 0.0;
  };
  return config;
}

FlowConfig RayleighBenardCase(const RayleighBenardOptions& options) {
  // Free-fall nondimensionalization: length H, velocity U_f = sqrt(g beta
  // dT H), so velocities stay O(1) for any Ra and a fixed dt obeys the CFL
  // limit.  Momentum diffusivity sqrt(Pr/Ra), thermal 1/sqrt(Ra Pr),
  // buoyancy coefficient 1.
  FlowConfig config;
  config.mesh.order = options.order;
  config.mesh.elements = options.elements;
  config.mesh.length = {options.aspect, 0.5 * options.aspect, 1.0};
  config.mesh.periodic = {true, true, false};
  // No-slip top and bottom plates; x/y periodic.
  config.velocity_dirichlet = {false, false, false, false, true, true};
  config.temperature_dirichlet = {false, false, false, false, true, true};
  config.temperature_zlo = 0.5;
  config.temperature_zhi = -0.5;

  config.dt = options.dt;
  config.viscosity = std::sqrt(options.prandtl / options.rayleigh);
  config.conductivity = 1.0 / std::sqrt(options.rayleigh * options.prandtl);
  config.solve_temperature = true;
  config.buoyancy = 1.0;
  config.filter_strength = 0.1;
  config.filter_modes = 2;

  // Finite-amplitude divergence-free convection-roll seed (streamfunction
  // psi = -(A/k) sin(pi z) sin(k x)), with a correlated temperature
  // perturbation, superposed on the conduction profile.  At supercritical
  // Ra the roll sustains and transports heat; below critical it decays.
  const double amp = options.perturbation;
  const double k = 2.0 * std::numbers::pi / config.mesh.length[0];
  config.initial_condition = [amp, k](double x, double, double z, double& u,
                                      double& v, double& w, double& T) {
    using std::numbers::pi;
    u = -(amp * pi / k) * std::cos(pi * z) * std::sin(k * x);
    v = 0.0;
    w = amp * std::sin(pi * z) * std::cos(k * x);
    T = (0.5 - z) + 0.5 * amp * std::sin(pi * z) * std::cos(k * x);
  };
  return config;
}

FlowConfig TaylorGreenCase(const TaylorGreenOptions& options) {
  FlowConfig config;
  using std::numbers::pi;
  config.mesh.order = options.order;
  config.mesh.elements = options.elements;
  config.mesh.length = {2.0 * pi, 2.0 * pi, 2.0 * pi};
  config.mesh.periodic = {true, true, true};
  config.dt = options.dt;
  config.viscosity = options.viscosity;
  config.solve_temperature = false;
  config.initial_condition = [](double x, double y, double, double& u,
                                double& v, double& w, double& T) {
    u = std::sin(x) * std::cos(y);
    v = -std::cos(x) * std::sin(y);
    w = 0.0;
    T = 0.0;
  };
  return config;
}

void KovasznayExact(double reynolds, double x, double y, double& u,
                    double& v) {
  using std::numbers::pi;
  const double lambda =
      0.5 * reynolds - std::sqrt(0.25 * reynolds * reynolds + 4.0 * pi * pi);
  const double e = std::exp(lambda * (x - 0.5));
  u = 1.0 - e * std::cos(2.0 * pi * y);
  v = lambda / (2.0 * pi) * e * std::sin(2.0 * pi * y);
}

FlowConfig KovasznayCase(const KovasznayOptions& options) {
  FlowConfig config;
  config.mesh.order = options.order;
  config.mesh.elements = options.elements;
  config.mesh.length = {1.5, 1.0, 0.25};
  config.mesh.periodic = {false, true, true};
  config.mesh.partition_axis = 0;  // z has a single element layer
  config.velocity_dirichlet = {true, true, false, false, false, false};
  config.velocity_ic_carries_bc = true;

  config.dt = options.dt;
  config.viscosity = 1.0 / options.reynolds;
  config.solve_temperature = false;

  const double re = options.reynolds;
  config.initial_condition = [re](double x, double y, double, double& u,
                                  double& v, double& w, double& T) {
    KovasznayExact(re, x, y, u, v);
    w = 0.0;
    T = 0.0;
  };
  return config;
}

double TaylorGreenKineticEnergy(double viscosity, double t) {
  // KE(t) = 0.5 int |u|^2 = 0.5 * (2pi)^3 * 0.5 * exp(-4 nu t)
  using std::numbers::pi;
  const double volume = std::pow(2.0 * pi, 3);
  return 0.25 * volume * std::exp(-4.0 * viscosity * t);
}

}  // namespace nekrs::cases
