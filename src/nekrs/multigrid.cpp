#include "nekrs/multigrid.hpp"

#include <cmath>
#include <stdexcept>

#include "sem/tensor.hpp"

namespace nekrs {

namespace {

sem::BoxMeshSpec CoarseSpec(sem::BoxMeshSpec spec) {
  spec.order = 1;
  return spec;
}

std::vector<std::int64_t> CoarseGids(const sem::BoxMesh& mesh) {
  std::vector<std::int64_t> gids(mesh.NumLocalDofs());
  mesh.FillGlobalIds(gids);
  return gids;
}

}  // namespace

MultigridPreconditioner::MultigridPreconditioner(
    mpimini::Comm comm, const sem::BoxMeshSpec& spec, int rank, int nranks,
    const sem::ElementOperators& fine_ops, const sem::GatherScatter& fine_gs,
    const std::array<bool, 6>& dirichlet, Options options)
    : comm_(comm),
      options_(options),
      fine_ops_(fine_ops),
      fine_gs_(fine_gs),
      coarse_rule_(sem::MakeGllRule(1)),
      coarse_mesh_(CoarseSpec(spec), rank, nranks),
      coarse_ops_(coarse_rule_, coarse_mesh_) {
  coarse_gs_ = std::make_unique<sem::GatherScatter>(comm_,
                                                    CoarseGids(coarse_mesh_));
  coarse_solver_ =
      std::make_unique<HelmholtzSolver>(comm_, coarse_ops_, *coarse_gs_);

  coarse_mask_.resize(coarse_mesh_.NumLocalDofs());
  coarse_mesh_.FillDirichletMask(dirichlet, coarse_mask_);

  sem::BoxMesh fine_mesh(spec, rank, nranks);
  fine_mask_.resize(fine_mesh.NumLocalDofs());
  fine_mesh.FillDirichletMask(dirichlet, fine_mask_);

  // Transfer operators: trilinear (order-1) basis evaluated at the fine
  // GLL nodes gives the per-direction prolongation matrix.
  const sem::GllRule fine_rule = sem::MakeGllRule(spec.order);
  prolong_1d_ = sem::InterpolationMatrix(coarse_rule_, fine_rule.nodes);
  const int np = fine_rule.NumPoints();
  restrict_1d_.assign(prolong_1d_.size(), 0.0);
  for (int f = 0; f < np; ++f) {
    for (int c = 0; c < 2; ++c) {
      restrict_1d_[static_cast<std::size_t>(c * np + f)] =
          prolong_1d_[static_cast<std::size_t>(f * 2 + c)];
    }
  }

  fine_tmp_.resize(fine_ops_.NumDofs());
  fine_res_.resize(fine_ops_.NumDofs());
  fine_diag_.resize(fine_ops_.NumDofs());
  coarse_rhs_.resize(coarse_mesh_.NumLocalDofs());
  coarse_sol_.resize(coarse_mesh_.NumLocalDofs());
}

void MultigridPreconditioner::Restrict(std::span<const double> fine,
                                       std::span<double> coarse) const {
  // Adjoint of Prolong under the multiplicity-weighted inner product:
  // unassemble the dual vector, then apply P^T element-wise. The caller's
  // coarse result is *unassembled* (the coarse solver assembles internally).
  const auto& mult = fine_gs_.Multiplicity();
  const int np = static_cast<int>(std::round(
      std::cbrt(static_cast<double>(fine.size()) /
                static_cast<double>(coarse.size() / 8))));
  const std::size_t per_fine = static_cast<std::size_t>(np) * np * np;
  const std::size_t nel = fine.size() / per_fine;
  std::vector<double> local(per_fine);
  for (std::size_t e = 0; e < nel; ++e) {
    for (std::size_t q = 0; q < per_fine; ++q) {
      const std::size_t idx = e * per_fine + q;
      local[q] = fine[idx] / mult[idx];
    }
    const std::vector<double> down =
        sem::Interp3D(restrict_1d_, 2, np, local);
    for (std::size_t q = 0; q < 8; ++q) coarse[e * 8 + q] = down[q];
  }
}

void MultigridPreconditioner::Prolong(std::span<const double> coarse,
                                      std::span<double> fine) const {
  const std::size_t nel = coarse.size() / 8;
  const std::size_t per_fine = fine.size() / nel;
  const int np = static_cast<int>(std::round(
      std::cbrt(static_cast<double>(per_fine))));
  std::vector<double> local(8);
  for (std::size_t e = 0; e < nel; ++e) {
    for (std::size_t q = 0; q < 8; ++q) local[q] = coarse[e * 8 + q];
    const std::vector<double> up = sem::Interp3D(prolong_1d_, np, 2, local);
    for (std::size_t q = 0; q < per_fine; ++q) fine[e * per_fine + q] = up[q];
  }
}

void MultigridPreconditioner::FineOperator(double h1, double h0,
                                           std::span<const double> x,
                                           std::span<double> w) {
  fine_ops_.Laplacian(x, w);
  auto mass = fine_ops_.MassDiag();
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = h1 * w[i] + h0 * mass[i] * x[i];
  }
  fine_gs_.Sum(w);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] *= fine_mask_[i];
}

void MultigridPreconditioner::Apply(double h1, double h0,
                                    std::span<const double> r,
                                    std::span<double> z) {
  const std::size_t n = fine_ops_.NumDofs();
  if (r.size() != n || z.size() != n) {
    throw std::invalid_argument("nekrs: multigrid size mismatch");
  }

  // (Re)build the assembled fine Jacobi diagonal when coefficients change.
  if (h1 != diag_h1_ || h0 != diag_h0_) {
    auto adiag = fine_ops_.StiffnessDiag();
    auto mass = fine_ops_.MassDiag();
    for (std::size_t i = 0; i < n; ++i) {
      fine_diag_[i] = h1 * adiag[i] + h0 * mass[i];
    }
    fine_gs_.Sum(fine_diag_);
    for (std::size_t i = 0; i < n; ++i) {
      if (fine_diag_[i] == 0.0 || fine_mask_[i] == 0.0) fine_diag_[i] = 1.0;
    }
    diag_h1_ = h1;
    diag_h0_ = h0;
  }

  const double omega = options_.jacobi_weight;

  // Pre-smooth from z = 0: first sweep is z = w D^-1 r, later sweeps use
  // the current residual.
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = omega * r[i] / fine_diag_[i] * fine_mask_[i];
  }
  for (int s = 1; s < options_.smooth_sweeps; ++s) {
    FineOperator(h1, h0, z, fine_res_);
    for (std::size_t i = 0; i < n; ++i) {
      z[i] += omega * (r[i] - fine_res_[i]) / fine_diag_[i] * fine_mask_[i];
    }
  }

  // Coarse-grid correction.
  FineOperator(h1, h0, z, fine_res_);
  for (std::size_t i = 0; i < n; ++i) fine_res_[i] = r[i] - fine_res_[i];
  Restrict(fine_res_, coarse_rhs_);
  std::fill(coarse_sol_.begin(), coarse_sol_.end(), 0.0);
  HelmholtzSolver::Options coarse_options;
  coarse_options.h1 = h1;
  coarse_options.h0 = h0;
  coarse_options.tolerance = options_.coarse_tolerance;
  coarse_options.relative_tolerance = true;
  coarse_options.max_iterations = options_.coarse_max_iterations;
  coarse_options.remove_mean = options_.remove_mean;
  coarse_solver_->Solve(coarse_options, coarse_rhs_, coarse_sol_,
                        coarse_mask_);
  Prolong(coarse_sol_, fine_tmp_);
  for (std::size_t i = 0; i < n; ++i) z[i] += fine_tmp_[i] * fine_mask_[i];

  // Post-smooth (symmetric with the pre-smoothing).
  for (int s = 0; s < options_.smooth_sweeps; ++s) {
    FineOperator(h1, h0, z, fine_res_);
    for (std::size_t i = 0; i < n; ++i) {
      z[i] += omega * (r[i] - fine_res_[i]) / fine_diag_[i] * fine_mask_[i];
    }
  }
}

}  // namespace nekrs
