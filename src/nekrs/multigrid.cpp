#include "nekrs/multigrid.hpp"

#include <cmath>
#include <stdexcept>

#include "instrument/metrics.hpp"
#include "instrument/tracer.hpp"
#include "sem/tensor.hpp"

namespace nekrs {

namespace {

sem::BoxMeshSpec LevelSpec(sem::BoxMeshSpec spec, int order) {
  spec.order = order;
  return spec;
}

// Precision-dispatch accessors: for double the operator data lives in the
// level's ElementOperators / GatherScatter; for float it was down-converted
// into LevelData<float> at construction.
template <typename T, typename LevelT>
std::span<const T> MaskOf(const LevelT& level) {
  if constexpr (std::is_same_v<T, double>) {
    return {level.mask.data(), level.mask.size()};
  } else {
    return {level.flt.mask.data(), level.flt.mask.size()};
  }
}

template <typename T, typename LevelT>
std::span<const T> MultOf(const LevelT& level) {
  if constexpr (std::is_same_v<T, double>) {
    const std::vector<double>& m = level.gs->Multiplicity();
    return {m.data(), m.size()};
  } else {
    return {level.flt.mult.data(), level.flt.mult.size()};
  }
}

template <typename T, typename LevelT>
std::span<const T> DiagOf(const LevelT& level) {
  if constexpr (std::is_same_v<T, double>) {
    return {level.diag.data(), level.diag.size()};
  } else {
    return {level.flt.diag.data(), level.flt.diag.size()};
  }
}

template <typename T, typename LevelT>
std::span<const T> DerivOf(const LevelT& level) {
  if constexpr (std::is_same_v<T, double>) {
    const std::vector<double>& d = level.ops->Rule().deriv;
    return {d.data(), d.size()};
  } else {
    return {level.flt.deriv.data(), level.flt.deriv.size()};
  }
}

template <typename T, typename LevelT>
std::span<const T> DerivTOf(const LevelT& level) {
  if constexpr (std::is_same_v<T, double>) {
    const std::vector<double>& d = level.ops->Rule().deriv_t;
    return {d.data(), d.size()};
  } else {
    return {level.flt.deriv_t.data(), level.flt.deriv_t.size()};
  }
}

template <typename T, typename LevelT>
sem::LaplacianGeo<T> GeoOf(const LevelT& level) {
  if constexpr (std::is_same_v<T, double>) {
    return level.ops->Geo();
  } else {
    const auto& f = level.flt;
    return {{f.g11.data(), f.g11.size()}, {f.g12.data(), f.g12.size()},
            {f.g13.data(), f.g13.size()}, {f.g22.data(), f.g22.size()},
            {f.g23.data(), f.g23.size()}, {f.g33.data(), f.g33.size()}};
  }
}

template <typename T, typename LevelT>
std::span<const T> LevelMassOf(const LevelT& level) {
  if constexpr (std::is_same_v<T, double>) {
    return level.ops->MassDiag();
  } else {
    return {level.flt.mass.data(), level.flt.mass.size()};
  }
}

template <typename T, typename LevelT>
std::span<const T> RestrictOf(const LevelT& level) {
  if constexpr (std::is_same_v<T, double>) {
    return {level.restrict_1d.data(), level.restrict_1d.size()};
  } else {
    return {level.flt.restrict_1d.data(), level.flt.restrict_1d.size()};
  }
}

template <typename T, typename LevelT>
std::span<const T> ProlongOf(const LevelT& level) {
  if constexpr (std::is_same_v<T, double>) {
    return {level.prolong_1d.data(), level.prolong_1d.size()};
  } else {
    return {level.flt.prolong_1d.data(), level.flt.prolong_1d.size()};
  }
}

std::vector<float> ToFloat(std::span<const double> v) {
  std::vector<float> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = static_cast<float>(v[i]);
  return out;
}

}  // namespace

MultigridPreconditioner::MultigridPreconditioner(
    mpimini::Comm comm, const sem::BoxMeshSpec& spec, int rank, int nranks,
    const sem::ElementOperators& fine_ops, const sem::GatherScatter& fine_gs,
    const std::array<bool, 6>& dirichlet, Options options)
    : comm_(comm), options_(options), fine_ops_(fine_ops), fine_gs_(fine_gs) {
  // Order ladder: N, N/2, N/4, ..., plus the trilinear vertex level. An
  // order-1 fine space degenerates to the legacy {1, 1} pair.
  std::vector<int> orders;
  orders.push_back(spec.order);
  for (int o = spec.order / 2; o > 1; o /= 2) orders.push_back(o);
  orders.push_back(1);
  if (options_.max_levels >= 2 &&
      orders.size() > static_cast<std::size_t>(options_.max_levels)) {
    // Keep the finest (max_levels - 1) smoothing levels and the vertex
    // level; max_levels = 2 is the legacy single coarse jump.
    orders.erase(orders.begin() + (options_.max_levels - 1), orders.end() - 1);
  }

  const bool mixed = options_.precision == Precision::kFloat;
  levels_.reserve(orders.size());
  for (std::size_t l = 0; l < orders.size(); ++l) {
    Level level;
    level.order = orders[l];
    level.np = orders[l] + 1;
    level.per_el =
        static_cast<std::size_t>(level.np) * level.np * level.np;
    level.mesh = std::make_unique<sem::BoxMesh>(LevelSpec(spec, orders[l]),
                                                rank, nranks);
    level.ndofs = level.mesh->NumLocalDofs();
    level.nel = level.mesh->NumLocalElements();
    level.gids.resize(level.ndofs);
    level.mesh->FillGlobalIds(level.gids);
    level.mask.resize(level.ndofs);
    level.mesh->FillDirichletMask(dirichlet, level.mask);
    if (l == 0) {
      if (fine_ops_.NumDofs() != level.ndofs) {
        throw std::invalid_argument("nekrs: multigrid fine space mismatch");
      }
      level.ops = &fine_ops_;
      level.gs = &fine_gs_;
    } else {
      level.ops_owned = std::make_unique<sem::ElementOperators>(
          sem::MakeGllRule(level.order), *level.mesh);
      level.gs_owned = std::make_unique<sem::GatherScatter>(
          comm_, std::span<const std::int64_t>(level.gids));
      level.ops = level.ops_owned.get();
      level.gs = level.gs_owned.get();
    }
    level.diag.resize(level.ndofs);
    levels_.push_back(std::move(level));
  }

  // 1-D transfer matrices between adjacent levels: the coarse basis
  // evaluated at the fine GLL nodes gives the prolongation, its transpose
  // the (multiplicity-unassembled) restriction.
  for (std::size_t l = 0; l + 1 < levels_.size(); ++l) {
    Level& fine = levels_[l];
    const Level& coarse = levels_[l + 1];
    const sem::GllRule fine_rule = sem::MakeGllRule(fine.order);
    const sem::GllRule coarse_rule = sem::MakeGllRule(coarse.order);
    fine.prolong_1d = sem::InterpolationMatrix(coarse_rule, fine_rule.nodes);
    fine.restrict_1d.assign(fine.prolong_1d.size(), 0.0);
    for (int f = 0; f < fine.np; ++f) {
      for (int c = 0; c < coarse.np; ++c) {
        fine.restrict_1d[static_cast<std::size_t>(c) * fine.np + f] =
            fine.prolong_1d[static_cast<std::size_t>(f) * coarse.np + c];
      }
    }
  }

  // Cycle buffers (and, in mixed mode, the down-converted float operator
  // data — built once so the hot path never converts).
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    Level& level = levels_[l];
    auto size_buffers = [&](auto& data) {
      data.r.resize(level.ndofs);
      data.z.resize(level.ndofs);
      data.res.resize(level.ndofs);
      data.d.resize(level.ndofs);
      data.tmp.resize(level.ndofs);
      data.lap_scratch.resize(6 * level.per_el);
      if (l + 1 < levels_.size()) {
        const Level& coarse = levels_[l + 1];
        data.interp_scratch.resize(
            sem::Interp3DScratchSize(coarse.np, level.np));
        data.local_in.resize(level.per_el);
        data.local_out.resize(level.per_el);
      }
    };
    size_buffers(level.dbl);
    if (mixed) {
      size_buffers(level.flt);
      level.flt.deriv = ToFloat(level.ops->Rule().deriv);
      level.flt.deriv_t = ToFloat(level.ops->Rule().deriv_t);
      const sem::LaplacianGeo<double> geo = level.ops->Geo();
      level.flt.g11 = ToFloat(geo.g11);
      level.flt.g12 = ToFloat(geo.g12);
      level.flt.g13 = ToFloat(geo.g13);
      level.flt.g22 = ToFloat(geo.g22);
      level.flt.g23 = ToFloat(geo.g23);
      level.flt.g33 = ToFloat(geo.g33);
      level.flt.mass = ToFloat(level.ops->MassDiag());
      level.flt.mask = ToFloat(level.mask);
      level.flt.mult = ToFloat(level.gs->Multiplicity());
      level.flt.restrict_1d = ToFloat(level.restrict_1d);
      level.flt.prolong_1d = ToFloat(level.prolong_1d);
      level.flt.diag.resize(level.ndofs);
    }
  }

  coarse_solver_ = std::make_unique<HelmholtzSolver>(
      comm_, *levels_.back().ops, *levels_.back().gs);
  coarse_rhs_.resize(levels_.back().ndofs);
  coarse_sol_.resize(levels_.back().ndofs);
}

template <typename T>
void MultigridPreconditioner::LevelOperator(Level& level, double h1, double h0,
                                            std::span<const T> x,
                                            std::span<T> w) {
  sem::LaplacianFused<T>(DerivOf<T>(level), DerivTOf<T>(level), level.np,
                         level.nel, GeoOf<T>(level), x, w,
                         Data<T>(level).lap_scratch);
  auto mass = LevelMassOf<T>(level);
  const T a = static_cast<T>(h1);
  const T b = static_cast<T>(h0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = a * w[i] + b * mass[i] * x[i];
  }
  level.gs->Sum(w);
  auto mask = MaskOf<T>(level);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] *= mask[i];
}

template <typename T>
void MultigridPreconditioner::Smooth(Level& level, double h1, double h0,
                                     bool first) {
  auto& buf = Data<T>(level);
  auto diag = DiagOf<T>(level);
  auto mask = MaskOf<T>(level);
  const std::size_t n = level.ndofs;

  if (options_.smoother == Smoother::kJacobi) {
    const T omega = static_cast<T>(options_.jacobi_weight);
    int sweep = 0;
    if (first) {
      // First sweep from z = 0 is just the damped diagonal scaling.
      for (std::size_t i = 0; i < n; ++i) {
        buf.z[i] = omega * buf.r[i] / diag[i] * mask[i];
      }
      sweep = 1;
    }
    for (; sweep < options_.smooth_sweeps; ++sweep) {
      LevelOperator<T>(level, h1, h0, {buf.z.data(), n}, {buf.tmp.data(), n});
      for (std::size_t i = 0; i < n; ++i) {
        buf.z[i] += omega * (buf.r[i] - buf.tmp[i]) / diag[i] * mask[i];
      }
    }
    return;
  }

  // Chebyshev acceleration of Jacobi (nekRS form): a degree-k polynomial
  // in D^-1 A tuned to damp [lambda_max/10, 1.1 lambda_max].  The
  // three-term coefficients are computed in double and applied in T.
  const int degree = options_.chebyshev_degree < 1 ? 1
                                                   : options_.chebyshev_degree;
  const double lam = level.lambda_max > 0.0 ? level.lambda_max : 1.0;
  const double lam_hi = 1.1 * lam;
  const double lam_lo = 0.1 * lam;
  const double theta = 0.5 * (lam_hi + lam_lo);
  const double delta = 0.5 * (lam_hi - lam_lo);
  const double sigma = theta / delta;
  const T inv_theta = static_cast<T>(1.0 / theta);

  if (first) {
    for (std::size_t i = 0; i < n; ++i) {
      buf.z[i] = 0;
      buf.res[i] = buf.r[i];
    }
  } else {
    LevelOperator<T>(level, h1, h0, {buf.z.data(), n}, {buf.tmp.data(), n});
    for (std::size_t i = 0; i < n; ++i) buf.res[i] = buf.r[i] - buf.tmp[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    buf.d[i] = buf.res[i] / diag[i] * mask[i] * inv_theta;
  }
  double rho = 1.0 / sigma;
  for (int k = 1;; ++k) {
    for (std::size_t i = 0; i < n; ++i) buf.z[i] += buf.d[i];
    if (k == degree) break;
    LevelOperator<T>(level, h1, h0, {buf.d.data(), n}, {buf.tmp.data(), n});
    for (std::size_t i = 0; i < n; ++i) buf.res[i] -= buf.tmp[i];
    const double rho_next = 1.0 / (2.0 * sigma - rho);
    const T c_d = static_cast<T>(rho_next * rho);
    const T c_r = static_cast<T>(2.0 * rho_next / delta);
    for (std::size_t i = 0; i < n; ++i) {
      buf.d[i] = c_d * buf.d[i] + c_r * (buf.res[i] / diag[i] * mask[i]);
    }
    rho = rho_next;
  }
}

template <typename T>
void MultigridPreconditioner::RestrictTo(Level& fine, Level& coarse) {
  // Adjoint of Prolong under the multiplicity-weighted inner product:
  // unassemble the dual vector, then apply P^T element-wise. The coarse
  // result is *unassembled* (consumers assemble or solve as needed).
  auto& buf = Data<T>(fine);
  auto& cbuf = Data<T>(coarse);
  auto mult = MultOf<T>(fine);
  auto rmat = RestrictOf<T>(fine);
  for (int e = 0; e < fine.nel; ++e) {
    const std::size_t fbase = static_cast<std::size_t>(e) * fine.per_el;
    for (std::size_t q = 0; q < fine.per_el; ++q) {
      buf.local_in[q] = buf.res[fbase + q] / mult[fbase + q];
    }
    sem::Interp3D<T>(rmat, coarse.np, fine.np,
                     {buf.local_in.data(), fine.per_el},
                     {buf.local_out.data(), coarse.per_el},
                     buf.interp_scratch);
    const std::size_t cbase = static_cast<std::size_t>(e) * coarse.per_el;
    for (std::size_t q = 0; q < coarse.per_el; ++q) {
      cbuf.r[cbase + q] = buf.local_out[q];
    }
  }
}

template <typename T>
void MultigridPreconditioner::ProlongFrom(Level& coarse, Level& fine) {
  auto& buf = Data<T>(fine);
  auto& cbuf = Data<T>(coarse);
  auto pmat = ProlongOf<T>(fine);
  for (int e = 0; e < fine.nel; ++e) {
    const std::size_t cbase = static_cast<std::size_t>(e) * coarse.per_el;
    for (std::size_t q = 0; q < coarse.per_el; ++q) {
      buf.local_in[q] = cbuf.z[cbase + q];
    }
    sem::Interp3D<T>(pmat, fine.np, coarse.np,
                     {buf.local_in.data(), coarse.per_el},
                     {buf.local_out.data(), fine.per_el}, buf.interp_scratch);
    const std::size_t fbase = static_cast<std::size_t>(e) * fine.per_el;
    for (std::size_t q = 0; q < fine.per_el; ++q) {
      buf.d[fbase + q] = buf.local_out[q];
    }
  }
}

void MultigridPreconditioner::BuildCoarseDirect(double h1, double h0) {
  Level& coarse = levels_.back();
  const std::size_t n = coarse.ndofs;
  coarse_direct_ok_ = false;

  std::int64_t max_gid = -1;
  for (std::size_t i = 0; i < n; ++i) {
    if (coarse.gids[i] > max_gid) max_gid = coarse.gids[i];
  }
  max_gid = comm_.AllReduceValue(max_gid, mpimini::Op::kMax);
  const std::size_t nglobal = static_cast<std::size_t>(max_gid + 1);
  if (nglobal == 0 || nglobal > kDirectCoarseMaxDofs) return;
  coarse_nglobal_ = nglobal;

  // Assemble the global operator h1 K + h0 M from element stiffness
  // columns (one single-element fused-Laplacian apply per basis function —
  // the vertex space has 8 of them per element) and the diagonal mass.
  std::vector<double> a(nglobal * nglobal, 0.0);
  const sem::GllRule& rule = coarse.ops->Rule();
  const sem::LaplacianGeo<double> geo = coarse.ops->Geo();
  auto mass = coarse.ops->MassDiag();
  std::vector<double> ue(coarse.per_el), ke(coarse.per_el);
  auto& scratch = coarse.dbl.lap_scratch;
  for (int e = 0; e < coarse.nel; ++e) {
    const std::size_t base = static_cast<std::size_t>(e) * coarse.per_el;
    const sem::LaplacianGeo<double> geo_e{
        geo.g11.subspan(base, coarse.per_el),
        geo.g12.subspan(base, coarse.per_el),
        geo.g13.subspan(base, coarse.per_el),
        geo.g22.subspan(base, coarse.per_el),
        geo.g23.subspan(base, coarse.per_el),
        geo.g33.subspan(base, coarse.per_el)};
    for (std::size_t p = 0; p < coarse.per_el; ++p) {
      std::fill(ue.begin(), ue.end(), 0.0);
      ue[p] = 1.0;
      sem::LaplacianFused<double>(rule.deriv, rule.deriv_t, coarse.np, 1,
                                  geo_e, ue, ke, scratch);
      const std::size_t gp = static_cast<std::size_t>(coarse.gids[base + p]);
      for (std::size_t q = 0; q < coarse.per_el; ++q) {
        const std::size_t gq = static_cast<std::size_t>(coarse.gids[base + q]);
        a[gq * nglobal + gp] += h1 * ke[q];
      }
    }
    if (h0 != 0.0) {
      for (std::size_t q = 0; q < coarse.per_el; ++q) {
        const std::size_t gq = static_cast<std::size_t>(coarse.gids[base + q]);
        a[gq * nglobal + gq] += h0 * mass[base + q];
      }
    }
  }
  comm_.AllReduce(std::span<double>(a), mpimini::Op::kSum);

  // Assembled Dirichlet row mask and lumped mass (the constant-nullspace
  // weight): a dof is constrained when any rank masks it.
  coarse_rowmask_.assign(nglobal, 1.0);
  coarse_weight_.assign(nglobal, 0.0);
  std::vector<double> masked(nglobal, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t g = static_cast<std::size_t>(coarse.gids[i]);
    if (coarse.mask[i] == 0.0) masked[g] = 1.0;
    coarse_weight_[g] += mass[i];
  }
  comm_.AllReduce(std::span<double>(masked), mpimini::Op::kMax);
  comm_.AllReduce(std::span<double>(coarse_weight_), mpimini::Op::kSum);
  bool any_dirichlet = false;
  for (std::size_t g = 0; g < nglobal; ++g) {
    if (masked[g] == 0.0) continue;
    any_dirichlet = true;
    coarse_rowmask_[g] = 0.0;
    coarse_weight_[g] = 0.0;
    for (std::size_t q = 0; q < nglobal; ++q) {
      a[g * nglobal + q] = 0.0;
      a[q * nglobal + g] = 0.0;
    }
    a[g * nglobal + g] = 1.0;
  }

  // A pure-Neumann vertex Laplacian is singular on constants; shift it by
  // a mass-weighted rank-one term scaled to sit inside the spectrum, so
  // the factorization exists and the constant mode stays well-behaved.
  coarse_singular_ = !any_dirichlet && h0 == 0.0;
  if (coarse_singular_) {
    double trace = 0.0;
    double wsum = 0.0;
    for (std::size_t g = 0; g < nglobal; ++g) {
      trace += a[g * nglobal + g];
      wsum += coarse_weight_[g];
    }
    if (wsum <= 0.0) return;
    const double c =
        trace / (static_cast<double>(nglobal) * wsum * wsum);
    for (std::size_t g = 0; g < nglobal; ++g) {
      for (std::size_t q = 0; q < nglobal; ++q) {
        a[g * nglobal + q] += c * coarse_weight_[g] * coarse_weight_[q];
      }
    }
  }

  // In-place lower Cholesky; a non-positive pivot means the operator is
  // not SPD as assembled — leave the iterative fallback in charge.
  for (std::size_t j = 0; j < nglobal; ++j) {
    double diag = a[j * nglobal + j];
    for (std::size_t k = 0; k < j; ++k) {
      diag -= a[j * nglobal + k] * a[j * nglobal + k];
    }
    if (!(diag > 0.0)) return;
    const double ljj = std::sqrt(diag);
    a[j * nglobal + j] = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < nglobal; ++i) {
      double v = a[i * nglobal + j];
      for (std::size_t k = 0; k < j; ++k) {
        v -= a[i * nglobal + k] * a[j * nglobal + k];
      }
      a[i * nglobal + j] = v * inv;
    }
  }
  coarse_chol_ = std::move(a);
  coarse_global_.assign(nglobal, 0.0);
  coarse_direct_ok_ = true;
}

void MultigridPreconditioner::CoarseSolveDirect() {
  Level& coarse = levels_.back();
  const std::size_t n = coarse.ndofs;
  const std::size_t nglobal = coarse_nglobal_;
  std::vector<double>& b = coarse_global_;
  std::fill(b.begin(), b.end(), 0.0);
  // The restricted residual is an unassembled dual vector: summing every
  // element-local contribution into its global id assembles it.
  for (std::size_t i = 0; i < n; ++i) {
    b[static_cast<std::size_t>(coarse.gids[i])] += coarse_rhs_[i];
  }
  comm_.AllReduce(std::span<double>(b), mpimini::Op::kSum);
  for (std::size_t g = 0; g < nglobal; ++g) b[g] *= coarse_rowmask_[g];

  double wsum = 0.0;
  if (coarse_singular_) {
    // Project the constant component out of the dual vector ((1, b) = sum
    // of entries) before the solve, and out of the solution after it.
    double bsum = 0.0;
    for (std::size_t g = 0; g < nglobal; ++g) {
      bsum += b[g];
      wsum += coarse_weight_[g];
    }
    const double shift = bsum / wsum;
    for (std::size_t g = 0; g < nglobal; ++g) {
      b[g] -= shift * coarse_weight_[g];
    }
  }

  // L y = b, then L^T x = y, in place.
  const std::vector<double>& l = coarse_chol_;
  for (std::size_t i = 0; i < nglobal; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l[i * nglobal + k] * b[k];
    b[i] = v / l[i * nglobal + i];
  }
  for (std::size_t i = nglobal; i-- > 0;) {
    double v = b[i];
    for (std::size_t k = i + 1; k < nglobal; ++k) {
      v -= l[k * nglobal + i] * b[k];
    }
    b[i] = v / l[i * nglobal + i];
  }

  if (coarse_singular_) {
    double mean = 0.0;
    for (std::size_t g = 0; g < nglobal; ++g) {
      mean += coarse_weight_[g] * b[g];
    }
    mean /= wsum;
    for (std::size_t g = 0; g < nglobal; ++g) {
      b[g] = (b[g] - mean) * coarse_rowmask_[g];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    coarse_sol_[i] = b[static_cast<std::size_t>(coarse.gids[i])];
  }
}

template <typename T>
void MultigridPreconditioner::CoarseSolve(double h1, double h0) {
  Level& coarse = levels_.back();
  auto& buf = Data<T>(coarse);
  const std::size_t n = coarse.ndofs;
  for (std::size_t i = 0; i < n; ++i) {
    coarse_rhs_[i] = static_cast<double>(buf.r[i]);
  }
  if (coarse_direct_ok_) {
    CoarseSolveDirect();
    for (std::size_t i = 0; i < n; ++i) {
      buf.z[i] = static_cast<T>(coarse_sol_[i]);
    }
    return;
  }
  std::fill(coarse_sol_.begin(), coarse_sol_.end(), 0.0);
  HelmholtzSolver::Options coarse_options;
  coarse_options.h1 = h1;
  coarse_options.h0 = h0;
  coarse_options.tolerance = options_.coarse_tolerance;
  coarse_options.relative_tolerance = true;
  coarse_options.max_iterations = options_.coarse_max_iterations;
  coarse_options.remove_mean = options_.remove_mean;
  coarse_solver_->Solve(coarse_options, coarse_rhs_, coarse_sol_,
                        coarse.mask);
  for (std::size_t i = 0; i < n; ++i) {
    buf.z[i] = static_cast<T>(coarse_sol_[i]);
  }
}

template <typename T>
void MultigridPreconditioner::Cycle(std::size_t l, double h1, double h0) {
  Level& level = levels_[l];
  auto& buf = Data<T>(level);
  const std::size_t n = level.ndofs;

  Smooth<T>(level, h1, h0, /*first=*/true);

  // Residual and coarse-grid correction.
  LevelOperator<T>(level, h1, h0, {buf.z.data(), n}, {buf.res.data(), n});
  for (std::size_t i = 0; i < n; ++i) buf.res[i] = buf.r[i] - buf.res[i];
  Level& coarse = levels_[l + 1];
  RestrictTo<T>(level, coarse);
  if (l + 2 == levels_.size()) {
    CoarseSolve<T>(h1, h0);
  } else {
    auto& cbuf = Data<T>(coarse);
    coarse.gs->Sum(std::span<T>(cbuf.r.data(), coarse.ndofs));
    auto cmask = MaskOf<T>(coarse);
    for (std::size_t i = 0; i < coarse.ndofs; ++i) cbuf.r[i] *= cmask[i];
    Cycle<T>(l + 1, h1, h0);
  }
  ProlongFrom<T>(coarse, level);
  auto mask = MaskOf<T>(level);
  for (std::size_t i = 0; i < n; ++i) buf.z[i] += buf.d[i] * mask[i];

  Smooth<T>(level, h1, h0, /*first=*/false);
}

double MultigridPreconditioner::EstimateLambdaMax(Level& level, double h1,
                                                  double h0) {
  // Power iteration on the masked D^-1 A in double.  The seed is a fixed
  // function of the global ids, so the estimate does not depend on the
  // rank partition (up to reduction rounding).
  const std::size_t n = level.ndofs;
  auto& buf = level.dbl;
  auto mult = std::span<const double>(level.gs->Multiplicity());
  for (std::size_t i = 0; i < n; ++i) {
    buf.d[i] = (1.0 + 0.5 * std::sin(0.7 * static_cast<double>(
                                               level.gids[i] % 4096))) *
               level.mask[i];
  }
  const int iters = options_.power_iterations < 1 ? 1
                                                  : options_.power_iterations;
  double lambda = 1.0;
  for (int it = 0; it < iters; ++it) {
    LevelOperator<double>(level, h1, h0, {buf.d.data(), n},
                          {buf.tmp.data(), n});
    for (std::size_t i = 0; i < n; ++i) {
      buf.tmp[i] = buf.tmp[i] / level.diag[i] * level.mask[i];
    }
    const double norm2 = sem::AssembledDot(comm_, {buf.tmp.data(), n},
                                           {buf.tmp.data(), n}, mult);
    if (!(norm2 > 0.0)) return 1.0;
    lambda = std::sqrt(norm2);
    const double inv = 1.0 / lambda;
    for (std::size_t i = 0; i < n; ++i) buf.d[i] = buf.tmp[i] * inv;
  }
  return lambda;
}

void MultigridPreconditioner::EnsureCoefficients(double h1, double h0) {
  if (coefficients_ready_ && h1 == cached_h1_ && h0 == cached_h0_) return;
  for (std::size_t l = 0; l + 1 < levels_.size(); ++l) {
    Level& level = levels_[l];
    auto adiag = level.ops->StiffnessDiag();
    auto mass = level.ops->MassDiag();
    for (std::size_t i = 0; i < level.ndofs; ++i) {
      level.diag[i] = h1 * adiag[i] + h0 * mass[i];
    }
    level.gs->Sum(std::span<double>(level.diag));
    for (std::size_t i = 0; i < level.ndofs; ++i) {
      if (level.diag[i] == 0.0 || level.mask[i] == 0.0) level.diag[i] = 1.0;
    }
    if (options_.smoother == Smoother::kChebyshev) {
      level.lambda_max = EstimateLambdaMax(level, h1, h0);
    }
    if (options_.precision == Precision::kFloat) {
      for (std::size_t i = 0; i < level.ndofs; ++i) {
        level.flt.diag[i] = static_cast<float>(level.diag[i]);
      }
    }
  }
  if (options_.coarse_mode == CoarseMode::kDirect) {
    BuildCoarseDirect(h1, h0);
  }
  cached_h1_ = h1;
  cached_h0_ = h0;
  coefficients_ready_ = true;
}

void MultigridPreconditioner::Apply(double h1, double h0,
                                    std::span<const double> r,
                                    std::span<double> z) {
  const std::size_t n = levels_.front().ndofs;
  if (r.size() != n || z.size() != n) {
    throw std::invalid_argument("nekrs: multigrid size mismatch");
  }
  instrument::MetricsRegistry* metrics = instrument::CurrentMetrics();
  const std::int64_t begin_ns =
      metrics != nullptr ? instrument::Tracer::NowNs() : 0;

  EnsureCoefficients(h1, h0);

  if (options_.precision == Precision::kDouble) {
    auto& buf = levels_.front().dbl;
    for (std::size_t i = 0; i < n; ++i) buf.r[i] = r[i];
    Cycle<double>(0, h1, h0);
    for (std::size_t i = 0; i < n; ++i) z[i] = buf.z[i];
  } else {
    // pfloat cycle: one narrowing conversion on entry, one widening on
    // exit; everything in between (smoothing, operators, transfers,
    // gather-scatter) runs in float.  The coarse CG stays double.
    auto& buf = levels_.front().flt;
    for (std::size_t i = 0; i < n; ++i) buf.r[i] = static_cast<float>(r[i]);
    Cycle<float>(0, h1, h0);
    for (std::size_t i = 0; i < n; ++i) z[i] = static_cast<double>(buf.z[i]);
  }

  if (metrics != nullptr) {
    metrics->Add("solver.mg.cycles", 1.0);
    metrics->Add("solver.mg.cycle_seconds",
                 static_cast<double>(instrument::Tracer::NowNs() - begin_ns) *
                     1e-9);
  }
}

}  // namespace nekrs
