// Incompressible Navier–Stokes + scalar transport on spectral elements:
// the NekRS time-stepping skeleton.
//
//  * semi-implicit splitting: explicit advection/forcing with EXT2
//    extrapolation, BDF2 time derivative, implicit viscous Helmholtz solve,
//    pressure-projection step enforcing the divergence-free constraint;
//  * optional Boussinesq temperature equation (Rayleigh-Bénard);
//  * optional Brinkman volume penalization (immersed pebbles) and a constant
//    body force (channel-like driving);
//  * all fields reside in occamini device memory — the in situ bridge must
//    copy them to the host before building VTK data, exactly the pathway
//    whose cost the paper measures.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <span>

#include "mpimini/comm.hpp"
#include "nekrs/helmholtz.hpp"
#include "nekrs/multigrid.hpp"
#include "occamini/device.hpp"
#include "sem/box_mesh.hpp"
#include "sem/filter.hpp"
#include "sem/gather_scatter.hpp"
#include "sem/operators.hpp"

namespace nekrs {

/// Pointwise initial condition: fills (u,v,w,T) from (x,y,z).
using InitialCondition = std::function<void(double x, double y, double z,
                                            double& u, double& v, double& w,
                                            double& T)>;
/// Time-independent spatial field, e.g. Brinkman drag or heat source.
using ScalarField = std::function<double(double x, double y, double z)>;

struct FlowConfig {
  sem::BoxMeshSpec mesh;
  double dt = 1e-3;
  double viscosity = 1e-2;     ///< momentum diffusivity (Pr in RBC units)
  double conductivity = 1e-2;  ///< scalar diffusivity (1 in RBC units)

  bool solve_temperature = false;
  /// Buoyancy coefficient: adds +buoyancy * T to the z-momentum (Ra*Pr in
  /// the standard nondimensionalization). 0 disables.
  double buoyancy = 0.0;

  std::array<double, 3> body_force = {0.0, 0.0, 0.0};
  ScalarField brinkman;     ///< drag coefficient chi(x) >= 0; null = none
  ScalarField heat_source;  ///< volumetric heating q(x); null = none
  InitialCondition initial_condition;  ///< null = all zero

  /// Dirichlet (no-slip) velocity faces; periodic axes ignore their faces.
  std::array<bool, 6> velocity_dirichlet = {false, false, false,
                                            false, false, false};
  /// When true, the initial condition supplies the (possibly nonzero)
  /// velocity values at Dirichlet nodes, which the masked solves then hold
  /// fixed — inhomogeneous velocity boundary conditions (e.g. inflow).
  /// When false (default) Dirichlet velocity nodes are forced to zero
  /// (no-slip walls).
  bool velocity_ic_carries_bc = false;
  /// Dirichlet temperature faces; values below are applied on z faces.
  std::array<bool, 6> temperature_dirichlet = {false, false, false,
                                               false, false, false};
  double temperature_zlo = 0.0;  ///< T at z=0 when kZlo is Dirichlet
  double temperature_zhi = 0.0;  ///< T at z=Lz when kZhi is Dirichlet

  /// Strength of the per-step modal filter (0 disables). NekRS-style
  /// stabilization for under-resolved runs; see sem::ModalFilter.
  double filter_strength = 0.0;
  int filter_modes = 2;  ///< number of top Legendre modes attenuated

  /// Over-integrate (de-alias) the convection term on a 3/2-rule fine grid
  /// (NekRS's dealiasing option). Costlier per step, removes the aliasing
  /// error of nodal products.
  bool dealias = false;

  /// Number of previous pressure solutions kept for solution-projection
  /// acceleration of the pressure Poisson solve (0 disables). NekRS's
  /// pressure projection, typically a severalfold iteration reduction.
  int pressure_projection_vectors = 8;

  /// Precondition the pressure Poisson solve with p-multigrid (NekRS's pMG
  /// + coarse-grid correction). Cuts the CG iteration count ~2.5-3x, at the
  /// price of the smoothing work per application; pays off when the fine
  /// solve is iteration-bound (strong refinement), not at this repo's small
  /// bench sizes where the per-cycle cost dominates (see EXPERIMENTS.md
  /// A5). NekRS pairs pMG with a *direct* coarse solve, which is what
  /// removes the residual domain-size dependence entirely.
  bool pressure_multigrid = false;

  /// pMG shape when pressure_multigrid is on.  The defaults are the nekRS
  /// production configuration: degree-2 Chebyshev smoothing, the full
  /// N -> N/2 -> 1 order ladder, and a single-precision (pfloat) V-cycle
  /// under the double outer CG.  Set smoother = kJacobi, precision =
  /// kDouble, levels = 2 for the legacy bit-identical cycle.
  MultigridPreconditioner::Smoother pressure_mg_smoother =
      MultigridPreconditioner::Smoother::kChebyshev;
  MultigridPreconditioner::Precision pressure_mg_precision =
      MultigridPreconditioner::Precision::kFloat;
  int pressure_mg_levels = 0;  ///< 0 = full ladder, 2 = legacy two-level
  int pressure_mg_chebyshev_degree = 2;

  /// When > 0, adapt dt each step toward this advective CFL number
  /// (NekRS's targetCFL): dt changes by at most +-25 % per step and stays
  /// within [min_dt, max_dt]. The multistep coefficients use the proper
  /// variable-step BDF2/EXT2 formulas.
  double target_cfl = 0.0;
  double min_dt = 1e-8;
  double max_dt = 1e-1;

  double velocity_tol = 1e-8;
  double pressure_tol = 1e-6;
  double scalar_tol = 1e-8;
  int max_iterations = 2000;
};

/// Iteration counts of the last Step() (NekRS-style per-step report).
struct StepStats {
  int velocity_iterations = 0;  ///< summed over the three components
  int pressure_iterations = 0;
  int temperature_iterations = 0;
};

class FlowSolver {
 public:
  /// Collective: every rank constructs with the same config.
  FlowSolver(mpimini::Comm comm, occamini::Device& device, FlowConfig config);

  /// Advance one timestep. Collective.
  void Step();

  [[nodiscard]] int StepNumber() const { return step_; }
  [[nodiscard]] double Time() const { return time_; }
  /// Timestep that the *next* Step() will take (fixed unless target_cfl).
  [[nodiscard]] double Dt() const { return dt_; }
  [[nodiscard]] const FlowConfig& Config() const { return config_; }
  [[nodiscard]] const sem::BoxMesh& Mesh() const { return mesh_; }
  [[nodiscard]] const sem::GllRule& Rule() const { return rule_; }
  [[nodiscard]] const sem::ElementOperators& Operators() const { return ops_; }
  [[nodiscard]] const sem::GatherScatter& Gs() const { return gs_; }
  [[nodiscard]] occamini::Device& Device() { return device_; }
  [[nodiscard]] mpimini::Comm& Comm() { return comm_; }
  [[nodiscard]] const StepStats& LastStats() const { return stats_; }

  /// Device-resident solution fields (size NumLocalDofs each).
  occamini::Array<double>& VelocityX() { return u_; }
  occamini::Array<double>& VelocityY() { return v_; }
  occamini::Array<double>& VelocityZ() { return w_; }
  occamini::Array<double>& Pressure() { return pr_; }
  occamini::Array<double>& Temperature() { return temp_; }

  // ---- Diagnostics (collective) -------------------------------------

  /// 0.5 * integral of |u|^2 over the domain.
  double KineticEnergy();
  /// Maximum pointwise |div u| over the domain.
  double MaxDivergence();
  /// Volume integral of an arbitrary nodal field.
  double VolumeIntegral(std::span<const double> f);
  /// Volume-averaged Nusselt number 1 + <w T> (RBC units: kappa=DT=H=1).
  double NusseltNumber();
  /// Advective CFL number of the current velocity field.
  double CflNumber();

  /// Vorticity curl(u) at every node into caller device buffers (pointwise
  /// collocation derivatives, gather-scatter averaged for continuity).
  /// Collective.
  void ComputeVorticity(std::span<double> wx, std::span<double> wy,
                        std::span<double> wz);

  /// Q-criterion (second invariant of grad u): Q = -0.5 du_i/dx_j du_j/dx_i
  /// for incompressible flow; positive values mark vortex cores. Collective.
  void ComputeQCriterion(std::span<double> q);

  /// Restore prognostic fields from a snapshot (restart support). Field
  /// order: u, v, w, p, T. Resets multistep history to first-order.
  void LoadState(std::span<const double> u, std::span<const double> v,
                 std::span<const double> wz, std::span<const double> p,
                 std::span<const double> T, int step);

 private:
  std::span<double> Dev(occamini::Array<double>& a) {
    return {a.DevicePtr(), a.size()};
  }
  std::span<const double> Dev(const occamini::Array<double>& a) const {
    return {a.DevicePtr(), a.size()};
  }

  void ApplyInitialConditions();
  /// Advection + forcing + buoyancy + Brinkman, for all components (and T).
  void ComputeExplicitTerms();

  mpimini::Comm comm_;
  occamini::Device& device_;
  FlowConfig config_;
  sem::GllRule rule_;
  sem::BoxMesh mesh_;
  sem::ElementOperators ops_;
  sem::GatherScatter gs_;
  HelmholtzSolver helmholtz_;
  std::optional<MultigridPreconditioner> pressure_multigrid_;
  std::optional<HelmholtzSolver::Projection> pressure_projection_;
  std::optional<sem::ModalFilter> filter_;
  StepStats stats_;
  int step_ = 0;
  double time_ = 0.0;
  double dt_ = 0.0;       ///< next step size
  double dt_prev_ = 0.0;  ///< previous step size (variable-step BDF2)
  bool first_order_next_ = false;
  std::size_t n_ = 0;  ///< local dofs

  // Masks (host metadata mirrored once; values 0/1).
  std::vector<double> vel_mask_;
  std::vector<double> temp_mask_;
  std::vector<double> open_mask_;  ///< all ones (pressure)

  // Precomputed spatial fields.
  std::vector<double> chi_;   ///< Brinkman drag (empty if unused)
  std::vector<double> qsrc_;  ///< heat source (empty if unused)
  double min_spacing_ = 1.0;  ///< smallest GLL node spacing (CFL)

  // Prognostic fields and histories (device memory).
  occamini::Array<double> u_, v_, w_, pr_, temp_;
  occamini::Array<double> u1_, v1_, w1_, temp1_;      // previous step
  occamini::Array<double> nu_, nv_, nw_, nt_;         // N at step n
  occamini::Array<double> nu1_, nv1_, nw1_, nt1_;     // N at step n-1
  occamini::Array<double> rhs_, keep_, gx_, gy_, gz_;  // scratch
  occamini::Array<double> phi_;  // pressure increment, persisted as the
                                 // next step's warm start (NekRS-style)
};

}  // namespace nekrs
