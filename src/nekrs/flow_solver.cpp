#include "nekrs/flow_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "instrument/metrics.hpp"
#include "instrument/tracer.hpp"

namespace nekrs {

namespace {

sem::BoxMesh MakeMesh(const FlowConfig& config, const mpimini::Comm& comm) {
  return sem::BoxMesh(config.mesh, comm.Rank(), comm.Size());
}

std::vector<std::int64_t> MakeGids(const sem::BoxMesh& mesh) {
  std::vector<std::int64_t> gids(mesh.NumLocalDofs());
  mesh.FillGlobalIds(gids);
  return gids;
}

void Copy(std::span<const double> src, std::span<double> dst) {
  std::memcpy(dst.data(), src.data(), src.size_bytes());
}

}  // namespace

FlowSolver::FlowSolver(mpimini::Comm comm, occamini::Device& device,
                       FlowConfig config)
    : comm_(comm),
      device_(device),
      config_(std::move(config)),
      rule_(sem::MakeGllRule(config_.mesh.order)),
      mesh_(MakeMesh(config_, comm_)),
      ops_(rule_, mesh_),
      gs_(comm_, MakeGids(mesh_)),
      helmholtz_(comm_, ops_, gs_),
      n_(mesh_.NumLocalDofs()),
      u_(device, n_, "device"),
      v_(device, n_, "device"),
      w_(device, n_, "device"),
      pr_(device, n_, "device"),
      temp_(device, n_, "device"),
      u1_(device, n_, "device"),
      v1_(device, n_, "device"),
      w1_(device, n_, "device"),
      temp1_(device, n_, "device"),
      nu_(device, n_, "device"),
      nv_(device, n_, "device"),
      nw_(device, n_, "device"),
      nt_(device, n_, "device"),
      nu1_(device, n_, "device"),
      nv1_(device, n_, "device"),
      nw1_(device, n_, "device"),
      nt1_(device, n_, "device"),
      rhs_(device, n_, "device"),
      keep_(device, n_, "device"),
      gx_(device, n_, "device"),
      gy_(device, n_, "device"),
      gz_(device, n_, "device"),
      phi_(device, n_, "device") {
  vel_mask_.resize(n_);
  temp_mask_.resize(n_);
  open_mask_.assign(n_, 1.0);
  mesh_.FillDirichletMask(config_.velocity_dirichlet, vel_mask_);
  mesh_.FillDirichletMask(config_.temperature_dirichlet, temp_mask_);

  // Smallest GLL node spacing, for CFL estimates.
  const auto h = mesh_.ElementSize();
  double min_gap = 2.0;
  for (int i = 0; i + 1 < rule_.NumPoints(); ++i) {
    min_gap = std::min(min_gap,
                       rule_.nodes[static_cast<std::size_t>(i + 1)] -
                           rule_.nodes[static_cast<std::size_t>(i)]);
  }
  min_spacing_ = 0.5 * min_gap * std::min({h[0], h[1], h[2]});

  std::vector<double> x(n_), y(n_), z(n_);
  mesh_.FillCoordinates(rule_, x, y, z);
  if (config_.brinkman) {
    chi_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      chi_[i] = config_.brinkman(x[i], y[i], z[i]);
    }
  }
  if (config_.heat_source) {
    qsrc_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      qsrc_[i] = config_.heat_source(x[i], y[i], z[i]);
    }
  }
  if (config_.filter_strength > 0.0) {
    filter_.emplace(rule_, config_.filter_strength,
                    std::min(config_.filter_modes, config_.mesh.order));
  }
  if (config_.dealias) ops_.EnableDealiasing();
  if (config_.pressure_projection_vectors > 0) {
    pressure_projection_.emplace(n_, config_.pressure_projection_vectors);
  }
  if (config_.pressure_multigrid) {
    MultigridPreconditioner::Options mg;
    mg.remove_mean = true;  // the pressure problem is pure Neumann
    mg.smoother = config_.pressure_mg_smoother;
    mg.precision = config_.pressure_mg_precision;
    mg.max_levels = config_.pressure_mg_levels;
    mg.chebyshev_degree = config_.pressure_mg_chebyshev_degree;
    // Direct (redundant dense) coarse solve, the nekRS pairing for pMG;
    // auto-falls back to the coarse CG past the dense-size cap.
    mg.coarse_mode = MultigridPreconditioner::CoarseMode::kDirect;
    pressure_multigrid_.emplace(comm_, config_.mesh, comm_.Rank(),
                                comm_.Size(), ops_, gs_,
                                std::array<bool, 6>{}, mg);
  }
  dt_ = config_.dt;
  dt_prev_ = config_.dt;
  ApplyInitialConditions();
}

void FlowSolver::ApplyInitialConditions() {
  std::vector<double> x(n_), y(n_), z(n_);
  mesh_.FillCoordinates(rule_, x, y, z);
  auto us = Dev(u_);
  auto vs = Dev(v_);
  auto ws = Dev(w_);
  auto ps = Dev(pr_);
  auto ts = Dev(temp_);
  for (std::size_t i = 0; i < n_; ++i) {
    double uu = 0.0, vv = 0.0, ww = 0.0, tt = 0.0;
    if (config_.initial_condition) {
      config_.initial_condition(x[i], y[i], z[i], uu, vv, ww, tt);
    }
    const double lift = config_.velocity_ic_carries_bc ? 1.0 : vel_mask_[i];
    us[i] = uu * lift;
    vs[i] = vv * lift;
    ws[i] = ww * lift;
    ps[i] = 0.0;
    ts[i] = tt;
  }
  // Lift inhomogeneous temperature Dirichlet values on the z faces: masked
  // nodes carry the boundary value for the whole run.
  if (config_.solve_temperature) {
    const double lz = config_.mesh.length[2];
    for (std::size_t i = 0; i < n_; ++i) {
      if (temp_mask_[i] != 0.0) continue;
      if (z[i] < 0.5 * lz && config_.temperature_dirichlet[sem::kZlo]) {
        ts[i] = config_.temperature_zlo;
      } else if (z[i] >= 0.5 * lz && config_.temperature_dirichlet[sem::kZhi]) {
        ts[i] = config_.temperature_zhi;
      }
    }
  }
  Copy(Dev(u_), Dev(u1_));
  Copy(Dev(v_), Dev(v1_));
  Copy(Dev(w_), Dev(w1_));
  Copy(Dev(temp_), Dev(temp1_));
}

void FlowSolver::ComputeExplicitTerms() {
  auto us = Dev(u_);
  auto vs = Dev(v_);
  auto ws = Dev(w_);
  auto ts = Dev(temp_);
  auto scratch = Dev(rhs_);

  struct Component {
    std::span<const double> field;
    std::span<double> out;
    int axis;
  };
  const Component components[3] = {{us, Dev(nu_), 0},
                                   {vs, Dev(nv_), 1},
                                   {ws, Dev(nw_), 2}};
  for (const Component& c : components) {
    if (config_.dealias) {
      ops_.AdvectDealiased(us, vs, ws, c.field, scratch);
    } else {
      ops_.Advect(us, vs, ws, c.field, scratch);
    }
    const double f = config_.body_force[static_cast<std::size_t>(c.axis)];
    for (std::size_t i = 0; i < n_; ++i) {
      c.out[i] = -scratch[i] + f;
    }
  }
  if (config_.buoyancy != 0.0) {
    auto nwv = Dev(nw_);
    for (std::size_t i = 0; i < n_; ++i) {
      nwv[i] += config_.buoyancy * ts[i];
    }
  }
  if (config_.solve_temperature) {
    if (config_.dealias) {
      ops_.AdvectDealiased(us, vs, ws, ts, scratch);
    } else {
      ops_.Advect(us, vs, ws, ts, scratch);
    }
    auto ntv = Dev(nt_);
    for (std::size_t i = 0; i < n_; ++i) {
      double value = -scratch[i];
      if (!qsrc_.empty()) value += qsrc_[i];
      ntv[i] = value;
    }
  }
}

void FlowSolver::Step() {
  // Span taxonomy (see DESIGN.md): solver.step wraps the whole update;
  // the explicit/advective stage, the implicit velocity solves, and the
  // pressure projection each get a child span so telemetry can attribute
  // nearly all of a step's wall time to a named stage.
  instrument::Span step_span("solver.step");
  // Per-substep second counters for the metrics plane: one NowNs pair per
  // stage, taken only when a registry is installed (marks stay 0 otherwise).
  instrument::MetricsRegistry* metrics = instrument::CurrentMetrics();
  const std::int64_t step_begin_ns =
      metrics != nullptr ? instrument::Tracer::NowNs() : 0;
  std::int64_t stage_mark_ns = step_begin_ns;
  auto stage_done = [&](const char* counter) {
    if (metrics == nullptr) return;
    const std::int64_t now = instrument::Tracer::NowNs();
    metrics->Add(counter, static_cast<double>(now - stage_mark_ns) * 1e-9);
    stage_mark_ns = now;
  };
  const bool first = (step_ == 0) || first_order_next_;
  first_order_next_ = false;
  instrument::Span advection_span("solver.advection");

  // CFL-adaptive timestep (NekRS targetCFL): nudge dt toward the target,
  // limited to +-25 % per step. Collective (CflNumber reduces).
  if (config_.target_cfl > 0.0 && step_ > 0) {
    const double cfl = CflNumber();  // CFL of the *last* step size
    if (cfl > 0.0) {
      const double scale =
          std::clamp(config_.target_cfl / cfl, 0.75, 1.25);
      dt_ = std::clamp(dt_ * scale, config_.min_dt, config_.max_dt);
    }
  }
  const double dt = dt_;

  // Variable-step BDF2/EXT2 coefficients with ratio rho = dt_n / dt_{n-1}:
  //   du/dt ~ [ (1+2rho)/(1+rho) u^{n+1} - (1+rho) u^n
  //             + rho^2/(1+rho) u^{n-1} ] / dt
  //   N*    ~ (1+rho) N^n - rho N^{n-1}
  // (rho = 1 recovers the constant-step 1.5/2.0/0.5 and 2/-1 sets.)
  const double rho_dt = first ? 1.0 : dt / dt_prev_;
  const double b0 = first ? 1.0 / dt
                          : (1.0 + 2.0 * rho_dt) / (1.0 + rho_dt) / dt;
  const double b1 = first ? 1.0 / dt : (1.0 + rho_dt) / dt;
  const double b2 =
      first ? 0.0 : rho_dt * rho_dt / (1.0 + rho_dt) / dt;
  const double e1 = first ? 1.0 : 1.0 + rho_dt;
  const double e2 = first ? 0.0 : rho_dt;
  stats_ = {};

  // Rotate the explicit-term history, then evaluate N at the current state.
  Copy(Dev(nu_), Dev(nu1_));
  Copy(Dev(nv_), Dev(nv1_));
  Copy(Dev(nw_), Dev(nw1_));
  if (config_.solve_temperature) Copy(Dev(nt_), Dev(nt1_));
  device_.Launch("makef", [&] { ComputeExplicitTerms(); });

  auto mass = ops_.MassDiag();
  // Pressure gradient at step n, shared by all three momentum equations.
  device_.Launch("gradp",
                 [&] { ops_.Gradient(Dev(pr_), Dev(gx_), Dev(gy_), Dev(gz_)); });
  advection_span.End();
  stage_done("solver.advection_seconds");
  instrument::Span helmholtz_span("solver.helmholtz");

  struct Momentum {
    occamini::Array<double>* field;
    occamini::Array<double>* prev;
    occamini::Array<double>* nc;
    occamini::Array<double>* nc1;
    occamini::Array<double>* gp;
    const char* name;
  };
  Momentum momenta[3] = {{&u_, &u1_, &nu_, &nu1_, &gx_, "velocity_x"},
                         {&v_, &v1_, &nv_, &nv1_, &gy_, "velocity_y"},
                         {&w_, &w1_, &nw_, &nw1_, &gz_, "velocity_z"}};
  for (Momentum& m : momenta) {
    auto field = Dev(*m.field);
    auto prev = Dev(*m.prev);
    auto nc = Dev(*m.nc);
    auto nc1 = Dev(*m.nc1);
    auto gp = Dev(*m.gp);
    auto rhs = Dev(rhs_);
    auto keep = Dev(keep_);
    Copy(field, keep);  // preserve u^n for the history rotation
    device_.Launch("makef_rhs", [&] {
      for (std::size_t i = 0; i < n_; ++i) {
        const double bdf = b1 * field[i] - b2 * prev[i];
        const double next = e1 * nc[i] - e2 * nc1[i];
        rhs[i] = mass[i] * (bdf + next - gp[i]);
      }
    });
    HelmholtzSolver::Options options;
    options.h1 = config_.viscosity;
    options.h0 = b0;
    options.tolerance = config_.velocity_tol;
    options.relative_tolerance = true;
    options.max_iterations = config_.max_iterations;
    HelmholtzResult result;
    device_.Launch(m.name, [&] {
      result = helmholtz_.Solve(options, rhs, field, vel_mask_);
    });
    stats_.velocity_iterations += result.iterations;
    Copy(keep, prev);  // prev <- u^n
  }

  // Brinkman volume penalization, applied as a split-implicit relaxation
  // u* <- u*/(1 + chi/b0): unconditionally stable for any drag coefficient
  // (an explicit -chi*u term would restrict dt to ~1/chi).
  if (!chi_.empty()) {
    device_.Launch("brinkman", [&] {
      auto us = Dev(u_);
      auto vs = Dev(v_);
      auto ws = Dev(w_);
      for (std::size_t i = 0; i < n_; ++i) {
        const double relax = 1.0 / (1.0 + chi_[i] / b0);
        us[i] *= relax;
        vs[i] *= relax;
        ws[i] *= relax;
      }
    });
  }

  helmholtz_span.End();
  stage_done("solver.helmholtz_seconds");

  // Pressure projection: A phi = -b0 B div(u*), then u -= grad(phi)/b0.
  {
    instrument::Span pressure_span("solver.pressure");
    auto div = Dev(gx_);
    auto rhs = Dev(rhs_);
    device_.Launch("divergence",
                   [&] { ops_.Divergence(Dev(u_), Dev(v_), Dev(w_), div); });
    for (std::size_t i = 0; i < n_; ++i) {
      rhs[i] = -b0 * mass[i] * div[i];
    }
    // Warm start from the previous step's increment: successive pressure
    // increments vary slowly, which slashes CG iterations (NekRS's
    // projection-based initial guess, reduced to one history vector).
    auto phi = Dev(phi_);
    HelmholtzSolver::Options options;
    options.h1 = 1.0;
    options.h0 = 0.0;
    options.tolerance = config_.pressure_tol;
    options.relative_tolerance = true;
    options.max_iterations = config_.max_iterations;
    options.remove_mean = true;
    if (pressure_multigrid_) {
      options.preconditioner = &*pressure_multigrid_;
    }
    HelmholtzResult result;
    device_.Launch("pressure", [&] {
      result = helmholtz_.Solve(options, rhs, phi, open_mask_,
                                pressure_projection_ ? &*pressure_projection_
                                                     : nullptr);
    });
    stats_.pressure_iterations = result.iterations;
    device_.Launch("project", [&] {
      ops_.Gradient(phi, Dev(gx_), Dev(gy_), Dev(gz_));
      auto us = Dev(u_);
      auto vs = Dev(v_);
      auto ws = Dev(w_);
      auto ps = Dev(pr_);
      auto gxv = Dev(gx_);
      auto gyv = Dev(gy_);
      auto gzv = Dev(gz_);
      const double inv_b0 = 1.0 / b0;
      for (std::size_t i = 0; i < n_; ++i) {
        us[i] -= inv_b0 * gxv[i] * vel_mask_[i];
        vs[i] -= inv_b0 * gyv[i] * vel_mask_[i];
        ws[i] -= inv_b0 * gzv[i] * vel_mask_[i];
        ps[i] += phi[i];
      }
    });
  }
  stage_done("solver.pressure_seconds");

  if (config_.solve_temperature) {
    instrument::Span temperature_span("solver.temperature");
    auto field = Dev(temp_);
    auto prev = Dev(temp1_);
    auto nc = Dev(nt_);
    auto nc1 = Dev(nt1_);
    auto rhs = Dev(rhs_);
    auto keep = Dev(keep_);
    Copy(field, keep);
    device_.Launch("makeq_rhs", [&] {
      for (std::size_t i = 0; i < n_; ++i) {
        const double bdf = b1 * field[i] - b2 * prev[i];
        const double next = e1 * nc[i] - e2 * nc1[i];
        rhs[i] = mass[i] * (bdf + next);
      }
    });
    HelmholtzSolver::Options options;
    options.h1 = config_.conductivity;
    options.h0 = b0;
    options.tolerance = config_.scalar_tol;
    options.relative_tolerance = true;
    options.max_iterations = config_.max_iterations;
    HelmholtzResult result;
    device_.Launch("temperature", [&] {
      result = helmholtz_.Solve(options, rhs, field, temp_mask_);
    });
    stats_.temperature_iterations = result.iterations;
    Copy(keep, prev);
  }
  stage_done("solver.temperature_seconds");

  // NekRS-style stabilization: attenuate the top Legendre modes of every
  // prognostic field, then restore C0 continuity by averaging shared nodes.
  if (filter_) {
    instrument::Span filter_span("solver.filter");
    // Filtering + averaging perturbs Dirichlet nodes; hold their (possibly
    // inhomogeneous) boundary values fixed through the filter.
    auto us = Dev(u_);
    auto vs = Dev(v_);
    auto ws = Dev(w_);
    auto ts = Dev(temp_);
    auto keep = Dev(keep_);
    auto rhs = Dev(rhs_);
    auto gxs = Dev(gx_);
    auto gys = Dev(gy_);
    std::copy(us.begin(), us.end(), keep.begin());
    std::copy(vs.begin(), vs.end(), rhs.begin());
    std::copy(ws.begin(), ws.end(), gxs.begin());
    std::copy(ts.begin(), ts.end(), gys.begin());
    device_.Launch("filter", [&] {
      filter_->Apply(us);
      filter_->Apply(vs);
      filter_->Apply(ws);
      gs_.Average(us);
      gs_.Average(vs);
      gs_.Average(ws);
      if (config_.solve_temperature) {
        filter_->Apply(ts);
        gs_.Average(ts);
      }
    });
    for (std::size_t i = 0; i < n_; ++i) {
      if (vel_mask_[i] == 0.0) {
        us[i] = keep[i];
        vs[i] = rhs[i];
        ws[i] = gxs[i];
      }
      if (temp_mask_[i] == 0.0) ts[i] = gys[i];
    }
  }

  time_ += dt;
  dt_prev_ = dt;
  ++step_;
  if (metrics != nullptr) {
    const double step_seconds =
        static_cast<double>(instrument::Tracer::NowNs() - step_begin_ns) *
        1e-9;
    metrics->Add("solver.steps", 1.0);
    metrics->Add("solver.step_seconds", step_seconds);
    metrics->Observe("solver.step_seconds", step_seconds);
  }
}

double FlowSolver::KineticEnergy() {
  auto us = Dev(u_);
  auto vs = Dev(v_);
  auto ws = Dev(w_);
  auto mass = ops_.MassDiag();
  double local = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    local += 0.5 * mass[i] *
             (us[i] * us[i] + vs[i] * vs[i] + ws[i] * ws[i]);
  }
  return comm_.AllReduceValue(local, mpimini::Op::kSum);
}

double FlowSolver::MaxDivergence() {
  auto div = Dev(gx_);
  ops_.Divergence(Dev(u_), Dev(v_), Dev(w_), div);
  double local = 0.0;
  for (double d : div) local = std::max(local, std::abs(d));
  return comm_.AllReduceValue(local, mpimini::Op::kMax);
}

double FlowSolver::VolumeIntegral(std::span<const double> f) {
  auto mass = ops_.MassDiag();
  double local = 0.0;
  for (std::size_t i = 0; i < n_; ++i) local += mass[i] * f[i];
  return comm_.AllReduceValue(local, mpimini::Op::kSum);
}

double FlowSolver::NusseltNumber() {
  auto ws = Dev(w_);
  auto ts = Dev(temp_);
  auto mass = ops_.MassDiag();
  double local = 0.0;
  double vol = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    local += mass[i] * ws[i] * ts[i];
    vol += mass[i];
  }
  const double wt = comm_.AllReduceValue(local, mpimini::Op::kSum);
  const double volume = comm_.AllReduceValue(vol, mpimini::Op::kSum);
  // Nu = 1 + <w T> / (kappa dT / H); the case setups use dT = H = 1.
  return 1.0 + (wt / volume) / config_.conductivity;
}

double FlowSolver::CflNumber() {
  auto us = Dev(u_);
  auto vs = Dev(v_);
  auto ws = Dev(w_);
  double local = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    const double speed = std::sqrt(us[i] * us[i] + vs[i] * vs[i] +
                                   ws[i] * ws[i]);
    local = std::max(local, speed);
  }
  const double vmax = comm_.AllReduceValue(local, mpimini::Op::kMax);
  return vmax * dt_prev_ / min_spacing_;
}

void FlowSolver::ComputeVorticity(std::span<double> wx, std::span<double> wy,
                                  std::span<double> wz) {
  // curl(u): wx = dw/dy - dv/dz, wy = du/dz - dw/dx, wz = dv/dx - du/dy.
  ops_.Gradient(Dev(w_), Dev(gx_), Dev(gy_), Dev(gz_));
  for (std::size_t i = 0; i < n_; ++i) {
    wx[i] = gy_.DevicePtr()[i];
    wy[i] = -gx_.DevicePtr()[i];
  }
  ops_.Gradient(Dev(v_), Dev(gx_), Dev(gy_), Dev(gz_));
  for (std::size_t i = 0; i < n_; ++i) {
    wx[i] -= gz_.DevicePtr()[i];
    wz[i] = gx_.DevicePtr()[i];
  }
  ops_.Gradient(Dev(u_), Dev(gx_), Dev(gy_), Dev(gz_));
  for (std::size_t i = 0; i < n_; ++i) {
    wy[i] += gz_.DevicePtr()[i];
    wz[i] -= gy_.DevicePtr()[i];
  }
  gs_.Average(wx);
  gs_.Average(wy);
  gs_.Average(wz);
}

void FlowSolver::ComputeQCriterion(std::span<double> q) {
  // Q = -0.5 (ux^2 + vy^2 + wz^2) - (uy vx + uz wx + vz wy).
  auto keep = Dev(keep_);  // u_y, later v_z
  auto rhs = Dev(rhs_);    // u_z
  ops_.Gradient(Dev(u_), Dev(gx_), Dev(gy_), Dev(gz_));
  for (std::size_t i = 0; i < n_; ++i) {
    const double ux = gx_.DevicePtr()[i];
    q[i] = -0.5 * ux * ux;
    keep[i] = gy_.DevicePtr()[i];
    rhs[i] = gz_.DevicePtr()[i];
  }
  ops_.Gradient(Dev(v_), Dev(gx_), Dev(gy_), Dev(gz_));
  for (std::size_t i = 0; i < n_; ++i) {
    const double vy = gy_.DevicePtr()[i];
    q[i] += -0.5 * vy * vy - keep[i] * gx_.DevicePtr()[i];
    keep[i] = gz_.DevicePtr()[i];  // v_z
  }
  ops_.Gradient(Dev(w_), Dev(gx_), Dev(gy_), Dev(gz_));
  for (std::size_t i = 0; i < n_; ++i) {
    const double wz = gz_.DevicePtr()[i];
    q[i] += -0.5 * wz * wz - rhs[i] * gx_.DevicePtr()[i] -
            keep[i] * gy_.DevicePtr()[i];
  }
  gs_.Average(q);
}

void FlowSolver::LoadState(std::span<const double> u, std::span<const double> v,
                           std::span<const double> wz,
                           std::span<const double> p,
                           std::span<const double> T, int step) {
  if (u.size() != n_ || v.size() != n_ || wz.size() != n_ || p.size() != n_ ||
      T.size() != n_) {
    throw std::invalid_argument("nekrs: LoadState size mismatch");
  }
  Copy(u, Dev(u_));
  Copy(v, Dev(v_));
  Copy(wz, Dev(w_));
  Copy(p, Dev(pr_));
  Copy(T, Dev(temp_));
  Copy(Dev(u_), Dev(u1_));
  Copy(Dev(v_), Dev(v1_));
  Copy(Dev(w_), Dev(w1_));
  Copy(Dev(temp_), Dev(temp1_));
  // The multistep history is unknown after a restart; the next step runs
  // first-order (BDF1/EXT1), exactly as NekRS does after reading a
  // checkpoint.
  step_ = step;
  time_ = step * config_.dt;
  dt_ = config_.dt;
  dt_prev_ = config_.dt;
  first_order_next_ = true;
  if (pressure_projection_) pressure_projection_->Clear();
}

}  // namespace nekrs
