// Ready-made flow configurations mirroring the paper's two use cases plus a
// verification case.
//
//  * PebbleBedCase  — the "pb146" stand-in: pressure-driven flow through a
//    box containing spherical pebbles modelled by Brinkman volume
//    penalization, with volumetric heating inside the pebbles (DESIGN.md
//    substitution ledger).
//  * RayleighBenardCase — Boussinesq Rayleigh-Bénard convection in a
//    periodic slab, heated below and cooled above (the in transit mesoscale
//    case).
//  * TaylorGreenCase — 2-D Taylor-Green vortex (z-invariant) with a known
//    analytic decay rate, used by the verification tests.
#pragma once

#include <vector>

#include "nekrs/flow_solver.hpp"

namespace nekrs::cases {

struct PebbleBedOptions {
  std::array<int, 3> elements = {4, 4, 4};
  int order = 4;
  int pebble_count = 146;      ///< pebbles placed on a jittered lattice
  double pebble_radius = 0.0;  ///< 0 => auto from count and domain
  double drag = 1e3;           ///< Brinkman drag inside pebbles
  double heating = 5.0;        ///< volumetric heat source inside pebbles
  double driving_force = 1.0;  ///< streamwise (z) body force
  double viscosity = 5e-3;
  double dt = 2e-3;
  unsigned seed = 146u;        ///< jitter seed (deterministic)
};

/// Pebble centres used by a PebbleBedCase (exposed for rendering/tests).
struct PebbleLayout {
  std::vector<std::array<double, 3>> centers;
  double radius = 0.0;
};

/// Compute the deterministic pebble layout for the given options.
PebbleLayout MakePebbleLayout(const PebbleBedOptions& options);

/// Flow through a pebble bed: periodic in z (streamwise), no-slip side
/// walls, temperature carried from heated pebbles.
FlowConfig PebbleBedCase(const PebbleBedOptions& options);

struct RayleighBenardOptions {
  std::array<int, 3> elements = {6, 2, 4};
  int order = 4;
  double rayleigh = 1e5;
  double prandtl = 0.71;
  double aspect = 3.0;  ///< Lx / H (Ly is half that, H = 1)
  double dt = 5e-3;
  /// Amplitude of the divergence-free convection-roll seed.
  double perturbation = 0.1;
};

/// RBC in free-fall units (velocity scale sqrt(g beta dT H)): momentum
/// diffusivity sqrt(Pr/Ra), thermal diffusivity 1/sqrt(Ra Pr), unit
/// buoyancy; T = +0.5 at the bottom plate, -0.5 at the top.
FlowConfig RayleighBenardCase(const RayleighBenardOptions& options);

struct TaylorGreenOptions {
  std::array<int, 3> elements = {4, 4, 2};
  int order = 5;
  double viscosity = 1e-2;
  double dt = 2e-3;
};

/// 2-D Taylor-Green vortex on [0,2pi]^3 (z-invariant, fully periodic):
/// u =  sin(x) cos(y) exp(-2 nu t)
/// v = -cos(x) sin(y) exp(-2 nu t)
/// An exact Navier-Stokes solution; kinetic energy decays as exp(-4 nu t).
FlowConfig TaylorGreenCase(const TaylorGreenOptions& options);

/// Analytic kinetic energy of the Taylor-Green case at time t (for the
/// domain [0,2pi]^3).
double TaylorGreenKineticEnergy(double viscosity, double t);

struct KovasznayOptions {
  std::array<int, 3> elements = {6, 4, 1};
  int order = 6;
  double reynolds = 40.0;
  double dt = 5e-4;  ///< the pressure start-up transient needs a small step
};

/// Kovasznay flow: the classic exact *steady* Navier-Stokes solution (wake
/// behind a periodic grid). On x in [0, 1.5], y in [0, 1] (periodic), with
/// lambda = Re/2 - sqrt(Re^2/4 + 4 pi^2):
///   u = 1 - exp(lambda (x - 0.5)) cos(2 pi y)
///   v = (lambda / 2 pi) exp(lambda (x - 0.5)) sin(2 pi y)
/// The x faces carry the exact (inhomogeneous Dirichlet) values; starting
/// from the exact solution the flow must remain steady — a discriminating
/// verification of the advection/pressure/viscous coupling.
FlowConfig KovasznayCase(const KovasznayOptions& options);

/// Exact Kovasznay velocity at (x, y) for the given Reynolds number.
void KovasznayExact(double reynolds, double x, double y, double& u,
                    double& v);

}  // namespace nekrs::cases
