#include "nekrs/helmholtz.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace nekrs {

HelmholtzSolver::Projection::Projection(std::size_t ndofs, int max_vectors)
    : ndofs_(ndofs),
      max_vectors_(max_vectors),
      xs_("device", ndofs * static_cast<std::size_t>(max_vectors)),
      axs_("device", ndofs * static_cast<std::size_t>(max_vectors)) {
  if (max_vectors < 1) {
    throw std::invalid_argument("nekrs: projection needs >= 1 vector");
  }
}

HelmholtzSolver::HelmholtzSolver(mpimini::Comm comm,
                                 const sem::ElementOperators& ops,
                                 const sem::GatherScatter& gs)
    : comm_(comm),
      ops_(ops),
      gs_(gs),
      r_("device", ops.NumDofs()),
      z_("device", ops.NumDofs()),
      p_("device", ops.NumDofs()),
      w_("device", ops.NumDofs()) {
  double local = 0.0;
  for (double m : ops_.MassDiag()) local += m;
  volume_ = comm_.AllReduceValue(local, mpimini::Op::kSum);
}

void HelmholtzSolver::ApplyOperator(double h1, double h0,
                                    std::span<const double> x,
                                    std::span<const double> mask,
                                    std::span<double> w) {
  ops_.Laplacian(x, w);
  auto mass = ops_.MassDiag();
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = h1 * w[i] + h0 * mass[i] * x[i];
  }
  gs_.Sum(w);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] *= mask[i];
}

double HelmholtzSolver::WeightedMean(std::span<const double> v) {
  auto mass = ops_.MassDiag();
  double local = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) local += mass[i] * v[i];
  return comm_.AllReduceValue(local, mpimini::Op::kSum) / volume_;
}

std::span<const double> HelmholtzSolver::JacobiDiag(
    double h1, double h0, std::span<const double> mask) {
  const std::size_t n = ops_.NumDofs();
  DiagEntry* hit = nullptr;
  for (DiagEntry& entry : diag_cache_) {
    if (entry.h1 == h1 && entry.h0 == h0 &&
        std::memcmp(entry.mask.data(), mask.data(), n * sizeof(double)) == 0) {
      hit = &entry;
      break;
    }
  }
  // The hit/miss verdict must be global: mask contents can coincide on a
  // subset of ranks (e.g. interior ranks of two boundary-condition
  // families), and the rebuild below contains a collective.
  const int miss =
      comm_.AllReduceValue(hit ? 0 : 1, mpimini::Op::kMax);
  if (miss != 0) {
    if (hit == nullptr) {
      if (diag_cache_.size() < kMaxDiagEntries) {
        hit = &diag_cache_.emplace_back(n);
      } else {
        hit = &diag_cache_.front();
        for (DiagEntry& entry : diag_cache_) {
          if (entry.last_used < hit->last_used) hit = &entry;
        }
      }
    }
    auto mass = ops_.MassDiag();
    auto adiag = ops_.StiffnessDiag();
    for (std::size_t i = 0; i < n; ++i) {
      hit->diag[i] = h1 * adiag[i] + h0 * mass[i];
    }
    gs_.Sum({hit->diag.data(), n});
    for (std::size_t i = 0; i < n; ++i) {
      if (hit->diag[i] == 0.0 || mask[i] == 0.0) hit->diag[i] = 1.0;
    }
    hit->h1 = h1;
    hit->h0 = h0;
    std::memcpy(hit->mask.data(), mask.data(), n * sizeof(double));
  }
  hit->last_used = ++diag_clock_;
  return {hit->diag.data(), n};
}

HelmholtzResult HelmholtzSolver::Solve(const Options& options,
                                       std::span<const double> rhs,
                                       std::span<double> x,
                                       std::span<const double> mask,
                                       Projection* projection) {
  const std::size_t n = ops_.NumDofs();
  if (rhs.size() != n || x.size() != n || mask.size() != n) {
    throw std::invalid_argument("nekrs: Helmholtz size mismatch");
  }
  auto mass = ops_.MassDiag();
  auto mult = std::span<const double>(gs_.Multiplicity());

  // Jacobi diagonal of the assembled operator — cached across solves and
  // only needed when CG runs with the built-in diagonal preconditioner.
  std::span<const double> diag;
  if (options.preconditioner == nullptr) {
    diag = JacobiDiag(options.h1, options.h0, mask);
  }

  // r = mask . QQ^T (rhs_local - (h1 A + h0 B) x).
  ops_.Laplacian(x, {w_.data(), n});
  for (std::size_t i = 0; i < n; ++i) {
    r_[i] = rhs[i] - (options.h1 * w_[i] + options.h0 * mass[i] * x[i]);
  }
  gs_.Sum({r_.data(), n});
  for (std::size_t i = 0; i < n; ++i) r_[i] *= mask[i];
  if (options.remove_mean) {
    // Orthogonalize against the constant null vector of the pure-Neumann
    // operator: subtract the multiplicity-weighted mean of the assembled
    // residual.
    double local = 0.0;
    double count = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      local += r_[i] / mult[i];
      count += 1.0 / mult[i];
    }
    const double mean =
        comm_.AllReduceValue(local, mpimini::Op::kSum) /
        comm_.AllReduceValue(count, mpimini::Op::kSum);
    for (std::size_t i = 0; i < n; ++i) r_[i] -= mean;
  }

  // The convergence target is set from the residual of the caller's guess,
  // before any projection: projection accelerates the solve, it must not
  // tighten (or loosen) the requested tolerance.
  HelmholtzResult result;
  double rr = sem::AssembledDot(comm_, {r_.data(), n}, {r_.data(), n}, mult);
  double target = options.tolerance * options.tolerance;
  if (options.relative_tolerance) {
    target = std::max(target, target * rr);
  }

  // Seed from the projection history: with an A-orthonormal basis {e_k},
  // the best initial increment is sum_k (e_k . r) e_k, and the residual
  // update uses the stored A e_k (no extra operator applications).
  std::vector<double> x_entry;
  if (projection) {
    if (projection->ndofs_ != n) {
      throw std::invalid_argument("nekrs: projection size mismatch");
    }
    x_entry.assign(x.begin(), x.end());
    for (int k = 0; k < projection->count_; ++k) {
      const double* ek = projection->xs_.data() + static_cast<std::size_t>(k) * n;
      const double* aek =
          projection->axs_.data() + static_cast<std::size_t>(k) * n;
      const double alpha =
          sem::AssembledDot(comm_, {ek, n}, {r_.data(), n}, mult);
      for (std::size_t i = 0; i < n; ++i) {
        x[i] += alpha * ek[i];
        r_[i] -= alpha * aek[i];
      }
    }
    rr = sem::AssembledDot(comm_, {r_.data(), n}, {r_.data(), n}, mult);
  }
  if (rr <= target) {
    result.converged = true;
    result.residual = std::sqrt(rr);
    return result;
  }

  auto apply_precond = [&] {
    if (options.preconditioner) {
      options.preconditioner->Apply(options.h1, options.h0, {r_.data(), n},
                                    {z_.data(), n});
      for (std::size_t i = 0; i < n; ++i) z_[i] *= mask[i];
    } else {
      for (std::size_t i = 0; i < n; ++i) z_[i] = r_[i] / diag[i];
    }
  };
  apply_precond();
  double rho = sem::AssembledDot(comm_, {r_.data(), n}, {z_.data(), n}, mult);
  for (std::size_t i = 0; i < n; ++i) p_[i] = z_[i];

  for (int it = 0; it < options.max_iterations; ++it) {
    ApplyOperator(options.h1, options.h0, {p_.data(), n}, mask,
                  {w_.data(), n});
    const double pw =
        sem::AssembledDot(comm_, {p_.data(), n}, {w_.data(), n}, mult);
    if (pw == 0.0) break;
    const double alpha = rho / pw;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p_[i];
      r_[i] -= alpha * w_[i];
    }
    rr = sem::AssembledDot(comm_, {r_.data(), n}, {r_.data(), n}, mult);
    result.iterations = it + 1;
    if (rr <= target) {
      result.converged = true;
      break;
    }
    apply_precond();
    const double rho_new =
        sem::AssembledDot(comm_, {r_.data(), n}, {z_.data(), n}, mult);
    const double beta = rho_new / rho;
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i) p_[i] = z_[i] + beta * p_[i];
  }

  if (options.remove_mean) {
    const double mean = WeightedMean(x);
    for (std::size_t i = 0; i < n; ++i) x[i] -= mean;
  }
  result.residual = std::sqrt(rr);

  // Record the solve's increment, A-orthonormalized against the history
  // (one extra operator application per solve).
  if (projection) {
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i) w[i] = x[i] - x_entry[i];
    ApplyOperator(options.h1, options.h0, w, mask, {w_.data(), n});
    std::vector<double> aw(w_.begin(), w_.begin() + static_cast<std::ptrdiff_t>(n));
    if (projection->count_ == projection->max_vectors_) {
      // Basis full: restart from scratch with the newest direction (the
      // standard NekRS reset policy).
      projection->count_ = 0;
    }
    for (int k = 0; k < projection->count_; ++k) {
      const double* ek = projection->xs_.data() + static_cast<std::size_t>(k) * n;
      const double* aek =
          projection->axs_.data() + static_cast<std::size_t>(k) * n;
      const double beta =
          sem::AssembledDot(comm_, {ek, n}, {aw.data(), n}, mult);
      for (std::size_t i = 0; i < n; ++i) {
        w[i] -= beta * ek[i];
        aw[i] -= beta * aek[i];
      }
    }
    const double norm2 =
        sem::AssembledDot(comm_, {w.data(), n}, {aw.data(), n}, mult);
    if (norm2 > 1e-24) {
      const double inv = 1.0 / std::sqrt(norm2);
      double* slot =
          projection->xs_.data() + static_cast<std::size_t>(projection->count_) * n;
      double* aslot =
          projection->axs_.data() +
          static_cast<std::size_t>(projection->count_) * n;
      for (std::size_t i = 0; i < n; ++i) {
        slot[i] = w[i] * inv;
        aslot[i] = aw[i] * inv;
      }
      ++projection->count_;
    }
  }
  return result;
}

}  // namespace nekrs
