#include "svtk/vtu_writer.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "xmlcfg/xml.hpp"

namespace svtk {

namespace {

constexpr char kB64Chars[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

// Encode raw payload with the VTK inline-binary uint64 size header.
std::string EncodeBlock(const void* data, std::size_t bytes) {
  std::vector<std::byte> block(sizeof(std::uint64_t) + bytes);
  const std::uint64_t header = bytes;
  std::memcpy(block.data(), &header, sizeof(header));
  if (bytes) std::memcpy(block.data() + sizeof(header), data, bytes);
  return Base64Encode(block.data(), block.size());
}

std::vector<std::byte> DecodeBlock(const std::string& text) {
  std::vector<std::byte> block = Base64Decode(text);
  if (block.size() < sizeof(std::uint64_t)) {
    throw std::runtime_error("vtu: truncated binary block");
  }
  std::uint64_t header = 0;
  std::memcpy(&header, block.data(), sizeof(header));
  if (block.size() - sizeof(header) != header) {
    throw std::runtime_error("vtu: binary block size mismatch");
  }
  block.erase(block.begin(),
              block.begin() + static_cast<std::ptrdiff_t>(sizeof(header)));
  return block;
}

template <typename T>
void WriteArrayAscii(std::ostream& os, std::span<const T> values) {
  // Full round-trip precision: ASCII checkpoints must restore exactly.
  os << std::setprecision(17);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ' ';
    if constexpr (sizeof(T) == 1) {
      os << static_cast<int>(values[i]);
    } else {
      os << values[i];
    }
  }
}

template <typename T>
void WriteDataArray(std::ostream& os, const std::string& vtk_type,
                    const std::string& name, int components,
                    std::span<const T> values, VtuEncoding encoding) {
  os << "      <DataArray type=\"" << vtk_type << "\" Name=\"" << name
     << "\" NumberOfComponents=\"" << components << "\" format=\""
     << (encoding == VtuEncoding::kAscii ? "ascii" : "binary") << "\">";
  if (encoding == VtuEncoding::kAscii) {
    WriteArrayAscii(os, values);
  } else {
    os << EncodeBlock(values.data(), values.size_bytes());
  }
  os << "</DataArray>\n";
}

template <typename T>
std::vector<T> ReadDataArray(const xmlcfg::Element& element) {
  std::vector<T> out;
  if (element.Attr("format") == "binary") {
    std::vector<std::byte> raw = DecodeBlock(element.text);
    if (raw.size() % sizeof(T) != 0) {
      throw std::runtime_error("vtu: binary array size not multiple of type");
    }
    out.resize(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
  } else {
    std::istringstream in(element.text);
    T v;
    while (in >> v) out.push_back(v);
  }
  return out;
}

}  // namespace

std::string Base64Encode(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::string out;
  out.reserve(((bytes + 2) / 3) * 4);
  for (std::size_t i = 0; i < bytes; i += 3) {
    const unsigned b0 = p[i];
    const unsigned b1 = i + 1 < bytes ? p[i + 1] : 0;
    const unsigned b2 = i + 2 < bytes ? p[i + 2] : 0;
    out += kB64Chars[b0 >> 2];
    out += kB64Chars[((b0 & 0x3) << 4) | (b1 >> 4)];
    out += i + 1 < bytes ? kB64Chars[((b1 & 0xF) << 2) | (b2 >> 6)] : '=';
    out += i + 2 < bytes ? kB64Chars[b2 & 0x3F] : '=';
  }
  return out;
}

std::vector<std::byte> Base64Decode(const std::string& text) {
  auto value_of = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '+') return 62;
    if (c == '/') return 63;
    if (c == '=') return -1;
    throw std::runtime_error("base64: invalid character");
  };
  std::vector<std::byte> out;
  out.reserve(text.size() / 4 * 3);
  unsigned buffer = 0;
  int bits = 0;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const int v = value_of(c);
    if (v < 0) break;  // padding
    buffer = (buffer << 6) | static_cast<unsigned>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::byte>((buffer >> bits) & 0xFF));
    }
  }
  return out;
}

std::size_t WriteVtu(const UnstructuredGrid& grid, const std::string& path,
                     VtuEncoding encoding) {
  std::ostringstream os;
  const std::size_t np = grid.NumPoints();
  const std::size_t nc = grid.NumCells();

  os << "<?xml version=\"1.0\"?>\n"
     << "<VTKFile type=\"UnstructuredGrid\" version=\"1.0\" "
        "byte_order=\"LittleEndian\" header_type=\"UInt64\">\n"
     << "  <UnstructuredGrid>\n"
     << "    <Piece NumberOfPoints=\"" << np << "\" NumberOfCells=\"" << nc
     << "\">\n";

  os << "    <Points>\n";
  WriteDataArray<double>(os, "Float64", "Points", 3, grid.Points(), encoding);
  os << "    </Points>\n";

  os << "    <Cells>\n";
  WriteDataArray<std::int64_t>(os, "Int64", "connectivity", 1,
                               grid.Connectivity(), encoding);
  std::vector<std::int64_t> offsets(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    offsets[c] = static_cast<std::int64_t>(8 * (c + 1));
  }
  WriteDataArray<std::int64_t>(os, "Int64", "offsets", 1,
                               std::span<const std::int64_t>(offsets),
                               encoding);
  std::vector<std::uint8_t> types(nc, kCellTypeHex);
  WriteDataArray<std::uint8_t>(os, "UInt8", "types", 1,
                               std::span<const std::uint8_t>(types), encoding);
  os << "    </Cells>\n";

  os << "    <PointData>\n";
  for (const std::string& name : grid.PointArrayNames()) {
    const DataArray* array = grid.PointArray(name);
    WriteDataArray<double>(os, "Float64", name, array->Components(),
                           array->Data(), encoding);
  }
  os << "    </PointData>\n";

  os << "    <CellData>\n";
  for (const std::string& name : grid.CellArrayNames()) {
    const DataArray* array = grid.CellArray(name);
    WriteDataArray<double>(os, "Float64", name, array->Components(),
                           array->Data(), encoding);
  }
  os << "    </CellData>\n";

  os << "    </Piece>\n"
     << "  </UnstructuredGrid>\n"
     << "</VTKFile>\n";

  const std::string text = os.str();
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("vtu: cannot open for writing: " + path);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return text.size();
}

UnstructuredGrid ReadVtu(const std::string& path) {
  xmlcfg::Document doc = xmlcfg::ParseFile(path);
  if (doc.root.name != "VTKFile") {
    throw std::runtime_error("vtu: not a VTKFile: " + path);
  }
  const xmlcfg::Element* ug = doc.root.FindChild("UnstructuredGrid");
  const xmlcfg::Element* piece = ug ? ug->FindChild("Piece") : nullptr;
  if (!piece) throw std::runtime_error("vtu: missing Piece element");

  const auto np = static_cast<std::size_t>(piece->AttrInt("NumberOfPoints"));
  const auto nc = static_cast<std::size_t>(piece->AttrInt("NumberOfCells"));
  UnstructuredGrid grid(np, nc);

  const xmlcfg::Element* points = piece->FindChild("Points");
  if (!points || points->children.empty()) {
    throw std::runtime_error("vtu: missing Points");
  }
  std::vector<double> coords = ReadDataArray<double>(points->children[0]);
  if (coords.size() != 3 * np) {
    throw std::runtime_error("vtu: point count mismatch");
  }
  std::memcpy(grid.Points().data(), coords.data(),
              coords.size() * sizeof(double));

  const xmlcfg::Element* cells = piece->FindChild("Cells");
  if (!cells) throw std::runtime_error("vtu: missing Cells");
  for (const xmlcfg::Element& array : cells->children) {
    if (array.Attr("Name") == "connectivity") {
      std::vector<std::int64_t> conn = ReadDataArray<std::int64_t>(array);
      if (conn.size() != 8 * nc) {
        throw std::runtime_error("vtu: connectivity size mismatch");
      }
      std::memcpy(grid.Connectivity().data(), conn.data(),
                  conn.size() * sizeof(std::int64_t));
    }
  }

  auto load_arrays = [&](const xmlcfg::Element* parent, bool point_data) {
    if (!parent) return;
    for (const xmlcfg::Element& array : parent->children) {
      const std::string name = array.Attr("Name");
      const int comps =
          static_cast<int>(array.AttrInt("NumberOfComponents", 1));
      std::vector<double> values = ReadDataArray<double>(array);
      DataArray& target = point_data ? grid.AddPointArray(name, comps)
                                     : grid.AddCellArray(name, comps);
      if (values.size() != target.Values()) {
        throw std::runtime_error("vtu: array size mismatch for " + name);
      }
      std::memcpy(target.Data().data(), values.data(),
                  values.size() * sizeof(double));
    }
  };
  load_arrays(piece->FindChild("PointData"), /*point_data=*/true);
  load_arrays(piece->FindChild("CellData"), /*point_data=*/false);
  return grid;
}

}  // namespace svtk
