// Unstructured grid of linear hexahedra (VTK cell type 12) plus named point
// and cell data arrays, and a per-rank MultiBlockDataSet.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/buffer.hpp"
#include "svtk/data_array.hpp"

namespace svtk {

/// VTK_HEXAHEDRON
inline constexpr std::uint8_t kCellTypeHex = 12;

/// An unstructured grid: points, hex connectivity, and data arrays.
///
/// Only linear hexahedra are supported — NekRS meshes are hexahedral and the
/// DataAdaptor tessellates each spectral element into (N)^3 hex sub-cells.
class UnstructuredGrid {
 public:
  UnstructuredGrid() = default;

  /// Allocate storage for `npoints` points and `ncells` hex cells.
  UnstructuredGrid(std::size_t npoints, std::size_t ncells);

  UnstructuredGrid(UnstructuredGrid&&) noexcept = default;
  UnstructuredGrid& operator=(UnstructuredGrid&&) noexcept = default;
  UnstructuredGrid(const UnstructuredGrid&) = delete;
  UnstructuredGrid& operator=(const UnstructuredGrid&) = delete;

  [[nodiscard]] std::size_t NumPoints() const { return npoints_; }
  [[nodiscard]] std::size_t NumCells() const { return ncells_; }

  /// Point coordinates, xyz-interleaved (3*NumPoints values).
  [[nodiscard]] std::span<double> Points() { return {points_ptr_, 3 * npoints_}; }
  [[nodiscard]] std::span<const double> Points() const {
    return {points_ptr_, 3 * npoints_};
  }

  void SetPoint(std::size_t i, double x, double y, double z) {
    points_ptr_[3 * i + 0] = x;
    points_ptr_[3 * i + 1] = y;
    points_ptr_[3 * i + 2] = z;
  }
  [[nodiscard]] std::array<double, 3> GetPoint(std::size_t i) const {
    return {points_ptr_[3 * i + 0], points_ptr_[3 * i + 1],
            points_ptr_[3 * i + 2]};
  }

  /// Hex connectivity, 8 point ids per cell (VTK node ordering).
  [[nodiscard]] std::span<std::int64_t> Connectivity() {
    return {connectivity_ptr_, 8 * ncells_};
  }
  [[nodiscard]] std::span<const std::int64_t> Connectivity() const {
    return {connectivity_ptr_, 8 * ncells_};
  }

  /// Underlying data-plane buffers (shared, zero-copy) for scatter-gather
  /// serialization.
  [[nodiscard]] const core::Buffer& PointsStorage() const { return points_; }
  [[nodiscard]] const core::Buffer& ConnectivityStorage() const {
    return connectivity_;
  }

  void SetCell(std::size_t cell, const std::array<std::int64_t, 8>& nodes);
  [[nodiscard]] std::array<std::int64_t, 8> GetCell(std::size_t cell) const;

  /// Create (or replace) a point-centered array; returns a reference to it.
  DataArray& AddPointArray(const std::string& name, int components);
  /// Create (or replace) a cell-centered array.
  DataArray& AddCellArray(const std::string& name, int components);

  /// Create (or replace) a point-centered array that adopts `storage`
  /// (tuple-interleaved doubles, NumPoints tuples) without copying — the
  /// zero-copy landing for staged device fields.
  DataArray& AdoptPointArray(const std::string& name, int components,
                             core::Buffer storage);
  /// Cell-centered counterpart of AdoptPointArray.
  DataArray& AdoptCellArray(const std::string& name, int components,
                            core::Buffer storage);

  [[nodiscard]] DataArray* PointArray(const std::string& name);
  [[nodiscard]] const DataArray* PointArray(const std::string& name) const;
  [[nodiscard]] DataArray* CellArray(const std::string& name);
  [[nodiscard]] const DataArray* CellArray(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> PointArrayNames() const;
  [[nodiscard]] std::vector<std::string> CellArrayNames() const;

  /// Axis-aligned bounding box {xmin,xmax,ymin,ymax,zmin,zmax}.
  [[nodiscard]] std::array<double, 6> Bounds() const;

  /// Total bytes held by points, connectivity, and all arrays.
  [[nodiscard]] std::size_t MemoryBytes() const;

 private:
  std::size_t npoints_ = 0;
  std::size_t ncells_ = 0;
  core::Buffer points_;
  core::Buffer connectivity_;
  double* points_ptr_ = nullptr;            // cached typed view of points_
  std::int64_t* connectivity_ptr_ = nullptr;  // cached view of connectivity_
  std::map<std::string, DataArray> point_arrays_;
  std::map<std::string, DataArray> cell_arrays_;
};

/// A collection of grid blocks; in this reproduction each rank contributes
/// one local block and `global_block_count` records the world total.
struct MultiBlockDataSet {
  std::vector<std::shared_ptr<UnstructuredGrid>> blocks;
  int global_block_count = 0;

  [[nodiscard]] std::size_t MemoryBytes() const {
    std::size_t total = 0;
    for (const auto& b : blocks) {
      if (b) total += b->MemoryBytes();
    }
    return total;
  }
};

}  // namespace svtk
