// svtk: the slice of the VTK data model that SENSEI relays.
//
// VTK is host-only (the paper calls out "VTK data model's current lack of
// GPU device memory support"), so every svtk array lives in host memory and
// its bytes are tracked under the "vtk" category — this is the allocation
// that produces the Catalyst-vs-Checkpointing memory gap in Fig 3.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "instrument/memory_tracker.hpp"

namespace svtk {

/// Where an array's values live on the mesh.
enum class Centering { kPoint, kCell };

/// A named array of doubles with a fixed number of components per tuple
/// (1 = scalar, 3 = vector).
class DataArray {
 public:
  DataArray() = default;

  DataArray(std::string name, std::size_t tuples, int components);

  [[nodiscard]] const std::string& Name() const { return name_; }
  [[nodiscard]] std::size_t Tuples() const { return tuples_; }
  [[nodiscard]] int Components() const { return components_; }
  [[nodiscard]] std::size_t Values() const {
    return tuples_ * static_cast<std::size_t>(components_);
  }

  [[nodiscard]] std::span<double> Data() {
    return {storage_.data(), storage_.size()};
  }
  [[nodiscard]] std::span<const double> Data() const {
    return {storage_.data(), storage_.size()};
  }

  double& At(std::size_t tuple, int component = 0) {
    return storage_[tuple * static_cast<std::size_t>(components_) +
                    static_cast<std::size_t>(component)];
  }
  double At(std::size_t tuple, int component = 0) const {
    return storage_[tuple * static_cast<std::size_t>(components_) +
                    static_cast<std::size_t>(component)];
  }

  /// Tuple-wise Euclidean magnitude (used for |velocity| coloring).
  [[nodiscard]] double Magnitude(std::size_t tuple) const;

  /// Min/max over all values (component-agnostic for scalars; magnitude for
  /// vectors when `by_magnitude`).
  struct Range {
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] Range ValueRange(bool by_magnitude = false) const;

 private:
  std::string name_;
  std::size_t tuples_ = 0;
  int components_ = 1;
  instrument::TrackedBuffer<double> storage_;
};

}  // namespace svtk
