// svtk: the slice of the VTK data model that SENSEI relays.
//
// VTK is host-only (the paper calls out "VTK data model's current lack of
// GPU device memory support"), so every svtk array lives in host memory.
// Self-allocated arrays are tracked under the "vtk" category — the
// allocation that produces the Catalyst-vs-Checkpointing memory gap in
// Fig 3.  Arrays can also *adopt* an existing data-plane buffer (e.g. the
// occamini D2H staging buffer) without copying, which is how the zero-copy
// Catalyst path avoids the second per-field host copy the seed performed.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>

#include "core/buffer.hpp"

namespace svtk {

/// Where an array's values live on the mesh.
enum class Centering { kPoint, kCell };

/// A named array of doubles with a fixed number of components per tuple
/// (1 = scalar, 3 = vector).
class DataArray {
 public:
  DataArray() = default;

  /// Allocate `tuples * components` doubles under the "vtk" category.
  DataArray(std::string name, std::size_t tuples, int components);

  /// Adopt external storage: wraps `storage` (which must hold exactly
  /// `tuples * components` doubles, tuple-interleaved) without copying.
  /// The buffer keeps its original tracker category, so staged bytes stay
  /// attributed to the layer that produced them.
  DataArray(std::string name, std::size_t tuples, int components,
            core::Buffer storage);

  DataArray(DataArray&&) noexcept = default;
  DataArray& operator=(DataArray&&) noexcept = default;
  DataArray(const DataArray&) = delete;
  DataArray& operator=(const DataArray&) = delete;

  [[nodiscard]] const std::string& Name() const { return name_; }
  [[nodiscard]] std::size_t Tuples() const { return tuples_; }
  [[nodiscard]] int Components() const { return components_; }
  [[nodiscard]] std::size_t Values() const {
    return tuples_ * static_cast<std::size_t>(components_);
  }

  [[nodiscard]] std::span<double> Data() { return {values_, Values()}; }
  [[nodiscard]] std::span<const double> Data() const {
    return {values_, Values()};
  }

  /// The underlying data-plane buffer (shared, zero-copy): serialization
  /// builds scatter-gather views over it instead of packing.
  [[nodiscard]] const core::Buffer& Storage() const { return storage_; }

  double& At(std::size_t tuple, int component = 0) {
    return values_[tuple * static_cast<std::size_t>(components_) +
                   static_cast<std::size_t>(component)];
  }
  double At(std::size_t tuple, int component = 0) const {
    return values_[tuple * static_cast<std::size_t>(components_) +
                   static_cast<std::size_t>(component)];
  }

  /// Tuple-wise Euclidean magnitude (used for |velocity| coloring).
  [[nodiscard]] double Magnitude(std::size_t tuple) const;

  /// Min/max over all values (component-agnostic for scalars; magnitude for
  /// vectors when `by_magnitude`).
  /// Closed value interval.  Defaults to the empty (inverted, infinite)
  /// interval — the identity for min/max accumulation, so an empty array's
  /// range never clamps a cross-rank AllReduce'd color range.
  struct Range {
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    [[nodiscard]] bool Empty() const { return min > max; }
  };
  [[nodiscard]] Range ValueRange(bool by_magnitude = false) const;

 private:
  std::string name_;
  std::size_t tuples_ = 0;
  int components_ = 1;
  core::Buffer storage_;
  double* values_ = nullptr;  // cached typed pointer into storage_
};

}  // namespace svtk
