// VTK XML UnstructuredGrid (.vtu) writer and reader.
//
// Two encodings:
//  * kAscii  — human-readable, used by small tests.
//  * kBinary — VTK "inline binary": base64(uint64 byte-count || payload)
//    with header_type="UInt64"; files are valid ParaView input and stay
//    well-formed XML, so our own reader reuses the xmlcfg parser.
//
// The SENSEI CheckpointAnalysisAdaptor writes these files; their on-disk
// size is the "Checkpointing" storage number in the Fig-2 storage-economy
// comparison.
#pragma once

#include <string>

#include "svtk/unstructured_grid.hpp"

namespace svtk {

enum class VtuEncoding { kAscii, kBinary };

/// Write `grid` to `path` (overwrites). Returns bytes written.
std::size_t WriteVtu(const UnstructuredGrid& grid, const std::string& path,
                     VtuEncoding encoding = VtuEncoding::kBinary);

/// Read a .vtu previously produced by WriteVtu.
UnstructuredGrid ReadVtu(const std::string& path);

/// Base64 helpers (exposed for tests).
std::string Base64Encode(const void* data, std::size_t bytes);
std::vector<std::byte> Base64Decode(const std::string& text);

}  // namespace svtk
