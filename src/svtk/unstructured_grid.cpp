#include "svtk/unstructured_grid.hpp"

#include <algorithm>
#include <limits>

namespace svtk {

UnstructuredGrid::UnstructuredGrid(std::size_t npoints, std::size_t ncells)
    : npoints_(npoints),
      ncells_(ncells),
      points_("vtk", npoints * 3 * sizeof(double)),
      connectivity_("vtk", ncells * 8 * sizeof(std::int64_t)),
      points_ptr_(points_.As<double>().data()),
      connectivity_ptr_(connectivity_.As<std::int64_t>().data()) {}

void UnstructuredGrid::SetCell(std::size_t cell,
                               const std::array<std::int64_t, 8>& nodes) {
  for (std::size_t k = 0; k < 8; ++k) {
    connectivity_ptr_[8 * cell + k] = nodes[k];
  }
}

std::array<std::int64_t, 8> UnstructuredGrid::GetCell(std::size_t cell) const {
  std::array<std::int64_t, 8> nodes;
  for (std::size_t k = 0; k < 8; ++k) {
    nodes[k] = connectivity_ptr_[8 * cell + k];
  }
  return nodes;
}

DataArray& UnstructuredGrid::AddPointArray(const std::string& name,
                                           int components) {
  point_arrays_[name] = DataArray(name, npoints_, components);
  return point_arrays_[name];
}

DataArray& UnstructuredGrid::AddCellArray(const std::string& name,
                                          int components) {
  cell_arrays_[name] = DataArray(name, ncells_, components);
  return cell_arrays_[name];
}

DataArray& UnstructuredGrid::AdoptPointArray(const std::string& name,
                                             int components,
                                             core::Buffer storage) {
  point_arrays_[name] =
      DataArray(name, npoints_, components, std::move(storage));
  return point_arrays_[name];
}

DataArray& UnstructuredGrid::AdoptCellArray(const std::string& name,
                                            int components,
                                            core::Buffer storage) {
  cell_arrays_[name] = DataArray(name, ncells_, components, std::move(storage));
  return cell_arrays_[name];
}

DataArray* UnstructuredGrid::PointArray(const std::string& name) {
  auto it = point_arrays_.find(name);
  return it == point_arrays_.end() ? nullptr : &it->second;
}

const DataArray* UnstructuredGrid::PointArray(const std::string& name) const {
  auto it = point_arrays_.find(name);
  return it == point_arrays_.end() ? nullptr : &it->second;
}

DataArray* UnstructuredGrid::CellArray(const std::string& name) {
  auto it = cell_arrays_.find(name);
  return it == cell_arrays_.end() ? nullptr : &it->second;
}

const DataArray* UnstructuredGrid::CellArray(const std::string& name) const {
  auto it = cell_arrays_.find(name);
  return it == cell_arrays_.end() ? nullptr : &it->second;
}

std::vector<std::string> UnstructuredGrid::PointArrayNames() const {
  std::vector<std::string> names;
  names.reserve(point_arrays_.size());
  for (const auto& [name, array] : point_arrays_) names.push_back(name);
  return names;
}

std::vector<std::string> UnstructuredGrid::CellArrayNames() const {
  std::vector<std::string> names;
  names.reserve(cell_arrays_.size());
  for (const auto& [name, array] : cell_arrays_) names.push_back(name);
  return names;
}

std::array<double, 6> UnstructuredGrid::Bounds() const {
  std::array<double, 6> b{};
  if (npoints_ == 0) return b;
  constexpr double inf = std::numeric_limits<double>::infinity();
  b = {inf, -inf, inf, -inf, inf, -inf};
  for (std::size_t i = 0; i < npoints_; ++i) {
    for (int d = 0; d < 3; ++d) {
      const double v = points_ptr_[3 * i + static_cast<std::size_t>(d)];
      b[static_cast<std::size_t>(2 * d)] =
          std::min(b[static_cast<std::size_t>(2 * d)], v);
      b[static_cast<std::size_t>(2 * d + 1)] =
          std::max(b[static_cast<std::size_t>(2 * d + 1)], v);
    }
  }
  return b;
}

std::size_t UnstructuredGrid::MemoryBytes() const {
  std::size_t total = points_.size() + connectivity_.size();
  for (const auto& [name, array] : point_arrays_) {
    total += array.Values() * sizeof(double);
  }
  for (const auto& [name, array] : cell_arrays_) {
    total += array.Values() * sizeof(double);
  }
  return total;
}

}  // namespace svtk
