#include "svtk/serialize.hpp"

#include <cstring>
#include <stdexcept>

namespace svtk {

namespace {
constexpr std::uint64_t kMagic = 0x53564B474249444ULL;  // "SVKGBID"-ish tag
}  // namespace

void ByteWriter::Raw(const void* data, std::size_t bytes) {
  const std::size_t old = buf_.size();
  buf_.resize(old + bytes);
  if (bytes) std::memcpy(buf_.data() + old, data, bytes);
}

std::uint64_t ByteReader::U64() {
  std::uint64_t v = 0;
  Raw(&v, sizeof(v));
  return v;
}

std::int32_t ByteReader::I32() {
  std::int32_t v = 0;
  Raw(&v, sizeof(v));
  return v;
}

double ByteReader::F64() {
  double v = 0;
  Raw(&v, sizeof(v));
  return v;
}

std::string ByteReader::Str() {
  const std::uint64_t n = U64();
  std::string s(n, '\0');
  Raw(s.data(), n);
  return s;
}

void ByteReader::Raw(void* out, std::size_t bytes) {
  if (pos_ + bytes > bytes_.size()) {
    throw std::runtime_error("svtk: serialized buffer underrun");
  }
  if (bytes) std::memcpy(out, bytes_.data() + pos_, bytes);
  pos_ += bytes;
}

core::BufferChain SerializeChain(const UnstructuredGrid& grid) {
  core::BufferChain chain;
  ByteWriter header;

  // Flush the accumulated header bytes as one owned segment (zero-copy
  // vector takeover), then append a zero-copy view of bulk storage.
  auto flush_header = [&] {
    if (header.Buffer().empty()) return;
    chain.Append(core::Buffer::TakeVector("serialize", header.Take()));
  };
  auto append_bulk = [&](const core::Buffer& storage, std::size_t values) {
    header.U64(values);
    flush_header();
    chain.Append(core::BufferView(storage));
  };

  header.U64(kMagic);
  header.U64(grid.NumPoints());
  header.U64(grid.NumCells());
  append_bulk(grid.PointsStorage(), grid.Points().size());
  append_bulk(grid.ConnectivityStorage(), grid.Connectivity().size());

  auto write_arrays = [&](const std::vector<std::string>& names,
                          bool point_data) {
    header.U64(names.size());
    for (const std::string& name : names) {
      const DataArray* array = point_data ? grid.PointArray(name)
                                          : grid.CellArray(name);
      header.Str(name);
      header.I32(array->Components());
      append_bulk(array->Storage(), array->Values());
    }
  };
  write_arrays(grid.PointArrayNames(), /*point_data=*/true);
  write_arrays(grid.CellArrayNames(), /*point_data=*/false);
  flush_header();
  return chain;
}

std::vector<std::byte> Serialize(const UnstructuredGrid& grid) {
  const core::BufferChain chain = SerializeChain(grid);
  std::vector<std::byte> out(chain.TotalBytes());
  chain.PackInto(out);
  return out;
}

UnstructuredGrid Deserialize(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  if (r.U64() != kMagic) {
    throw std::runtime_error("svtk: bad magic in serialized grid");
  }
  const std::uint64_t np = r.U64();
  const std::uint64_t nc = r.U64();
  UnstructuredGrid grid(np, nc);

  std::vector<double> points = r.Vec<double>();
  if (points.size() != 3 * np) {
    throw std::runtime_error("svtk: serialized point count mismatch");
  }
  std::memcpy(grid.Points().data(), points.data(),
              points.size() * sizeof(double));

  std::vector<std::int64_t> conn = r.Vec<std::int64_t>();
  if (conn.size() != 8 * nc) {
    throw std::runtime_error("svtk: serialized connectivity mismatch");
  }
  std::memcpy(grid.Connectivity().data(), conn.data(),
              conn.size() * sizeof(std::int64_t));

  auto read_arrays = [&](bool point_data) {
    const std::uint64_t count = r.U64();
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string name = r.Str();
      const int comps = r.I32();
      std::vector<double> values = r.Vec<double>();
      DataArray& target = point_data ? grid.AddPointArray(name, comps)
                                     : grid.AddCellArray(name, comps);
      if (values.size() != target.Values()) {
        throw std::runtime_error("svtk: serialized array mismatch: " + name);
      }
      std::memcpy(target.Data().data(), values.data(),
                  values.size() * sizeof(double));
    }
  };
  read_arrays(/*point_data=*/true);
  read_arrays(/*point_data=*/false);
  return grid;
}

}  // namespace svtk
