#include "svtk/data_array.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace svtk {

DataArray::DataArray(std::string name, std::size_t tuples, int components)
    : name_(std::move(name)),
      tuples_(tuples),
      components_(components),
      storage_("vtk",
               tuples * static_cast<std::size_t>(components) * sizeof(double)),
      values_(storage_.As<double>().data()) {}

DataArray::DataArray(std::string name, std::size_t tuples, int components,
                     core::Buffer storage)
    : name_(std::move(name)),
      tuples_(tuples),
      components_(components),
      storage_(std::move(storage)) {
  if (storage_.size() != Values() * sizeof(double)) {
    throw std::invalid_argument("svtk: adopted buffer size mismatch for " +
                                name_);
  }
  values_ = storage_.As<double>().data();
  core::CountAdoption();
}

double DataArray::Magnitude(std::size_t tuple) const {
  double sum = 0.0;
  for (int c = 0; c < components_; ++c) {
    const double v = At(tuple, c);
    sum += v * v;
  }
  return std::sqrt(sum);
}

DataArray::Range DataArray::ValueRange(bool by_magnitude) const {
  Range r;
  if (tuples_ == 0) return r;
  if (by_magnitude && components_ > 1) {
    r.min = r.max = Magnitude(0);
    for (std::size_t t = 1; t < tuples_; ++t) {
      const double m = Magnitude(t);
      r.min = std::min(r.min, m);
      r.max = std::max(r.max, m);
    }
  } else {
    auto data = Data();
    r.min = r.max = data[0];
    for (double v : data) {
      r.min = std::min(r.min, v);
      r.max = std::max(r.max, v);
    }
  }
  return r;
}

}  // namespace svtk
