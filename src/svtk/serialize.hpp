// Compact binary serialization of svtk grids.
//
// This is the "BP marshaling" payload format used by the adios module's SST
// engine (DESIGN.md E4): sim ranks serialize their local block, ship the
// bytes to an endpoint rank, and the endpoint reconstructs the grid.  Also
// reused for binary restart files.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/buffer.hpp"
#include "svtk/unstructured_grid.hpp"

namespace svtk {

/// Scatter-gather serialization: small owned header segments interleaved
/// with zero-copy views into the grid's own storage (points, connectivity,
/// array values).  No bulk byte is copied here — the single contiguous pack
/// happens at the transport boundary (BufferChain::Pack / Comm::SendGather).
/// The views share the grid's buffers, so they stay valid independently of
/// the grid's lifetime.
core::BufferChain SerializeChain(const UnstructuredGrid& grid);

/// Serialize a grid (points, connectivity, all arrays) into a byte buffer.
/// Value-semantics wrapper over SerializeChain (performs the one pack copy).
std::vector<std::byte> Serialize(const UnstructuredGrid& grid);

/// Inverse of Serialize. Throws std::runtime_error on malformed input.
UnstructuredGrid Deserialize(std::span<const std::byte> bytes);

/// A low-level growable byte writer with little-endian primitives.
class ByteWriter {
 public:
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(std::int32_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  template <typename T>
  void Span(std::span<const T> values) {
    U64(values.size());
    Raw(values.data(), values.size_bytes());
  }
  void Raw(const void* data, std::size_t bytes);

  [[nodiscard]] const std::vector<std::byte>& Buffer() const { return buf_; }
  std::vector<std::byte> Take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Cursor-based reader matching ByteWriter.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::uint64_t U64();
  std::int32_t I32();
  double F64();
  std::string Str();
  template <typename T>
  std::vector<T> Vec() {
    const std::uint64_t n = U64();
    std::vector<T> out(n);
    Raw(out.data(), n * sizeof(T));
    return out;
  }
  void Raw(void* out, std::size_t bytes);

  [[nodiscard]] bool AtEnd() const { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace svtk
