#include "adios/marshal.hpp"

#include <cstring>
#include <stdexcept>

namespace adios {

namespace {

constexpr std::uint64_t kBpMagic = 0x4250354D494E49ULL;  // "BP5MINI"

template <typename T>
void Append(std::vector<std::byte>& buf, const T& v) {
  const std::size_t old = buf.size();
  buf.resize(old + sizeof(T));
  std::memcpy(buf.data() + old, &v, sizeof(T));
}

template <typename T>
T Read(std::span<const std::byte> buf, std::size_t& pos) {
  if (pos + sizeof(T) > buf.size()) {
    throw std::runtime_error("adios: marshal buffer underrun");
  }
  T v;
  std::memcpy(&v, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

/// Byte range of one variable inside a packed step buffer.
struct VarRecord {
  std::string name;
  std::size_t offset = 0;
  std::size_t size = 0;
};

struct ParsedStep {
  int step = -1;
  int writer_rank = -1;
  std::vector<VarRecord> vars;
};

// Single bounds-checked parse shared by both unmarshal flavors: every
// length is validated against the remaining bytes before any read, so a
// truncated or corrupt buffer throws instead of reading out of bounds.
ParsedStep ParseStep(std::span<const std::byte> buffer) {
  std::size_t pos = 0;
  if (Read<std::uint64_t>(buffer, pos) != kBpMagic) {
    throw std::runtime_error("adios: bad BP magic");
  }
  ParsedStep parsed;
  parsed.step = static_cast<int>(Read<std::int64_t>(buffer, pos));
  parsed.writer_rank = static_cast<int>(Read<std::int64_t>(buffer, pos));
  const auto count = Read<std::uint64_t>(buffer, pos);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = Read<std::uint64_t>(buffer, pos);
    if (name_len > buffer.size() - pos) {
      throw std::runtime_error("adios: marshal name underrun");
    }
    VarRecord record;
    record.name.assign(reinterpret_cast<const char*>(buffer.data() + pos),
                       name_len);
    pos += name_len;
    const auto data_len = Read<std::uint64_t>(buffer, pos);
    if (data_len > buffer.size() - pos) {
      throw std::runtime_error("adios: marshal data underrun");
    }
    record.offset = pos;
    record.size = data_len;
    pos += data_len;
    parsed.vars.push_back(std::move(record));
  }
  if (pos != buffer.size()) {
    throw std::runtime_error("adios: marshal trailing bytes");
  }
  return parsed;
}

}  // namespace

core::BufferChain MarshalChain(const StepChain& staged) {
  core::BufferChain chain;
  std::vector<std::byte> header;

  auto flush_header = [&] {
    if (header.empty()) return;
    chain.Append(core::Buffer::TakeVector("marshal", std::move(header)));
    header = {};
  };

  Append(header, kBpMagic);
  Append(header, static_cast<std::int64_t>(staged.step));
  Append(header, static_cast<std::int64_t>(staged.writer_rank));
  Append(header, static_cast<std::uint64_t>(staged.variables.size()));
  for (const auto& [name, data] : staged.variables) {
    Append(header, static_cast<std::uint64_t>(name.size()));
    const std::size_t old = header.size();
    header.resize(old + name.size());
    std::memcpy(header.data() + old, name.data(), name.size());
    Append(header, static_cast<std::uint64_t>(data.TotalBytes()));
    flush_header();
    chain.Append(data);
  }
  flush_header();
  return chain;
}

std::vector<std::byte> MarshalStep(const StepPayload& payload) {
  StepChain staged;
  staged.step = payload.step;
  staged.writer_rank = payload.writer_rank;
  for (const auto& [name, data] : payload.variables) {
    staged.variables[name] = core::BufferChain(core::BufferView(data));
  }
  const core::BufferChain chain = MarshalChain(staged);
  std::vector<std::byte> out(chain.TotalBytes());
  chain.PackInto(out);
  return out;
}

StepPayload UnmarshalStep(std::span<const std::byte> buffer) {
  const ParsedStep parsed = ParseStep(buffer);
  StepPayload payload;
  payload.step = parsed.step;
  payload.writer_rank = parsed.writer_rank;
  for (const VarRecord& record : parsed.vars) {
    payload.variables[record.name] = core::Buffer::CopyOf(
        "marshal", buffer.subspan(record.offset, record.size));
  }
  return payload;
}

StepPayload UnmarshalShared(const core::Buffer& packed) {
  const ParsedStep parsed = ParseStep(packed.bytes());
  StepPayload payload;
  payload.step = parsed.step;
  payload.writer_rank = parsed.writer_rank;
  for (const VarRecord& record : parsed.vars) {
    payload.variables[record.name] = packed.Slice(record.offset, record.size);
  }
  return payload;
}

}  // namespace adios
