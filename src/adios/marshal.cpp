#include "adios/marshal.hpp"

#include <cstring>
#include <stdexcept>

namespace adios {

namespace {

constexpr std::uint64_t kBpMagic = 0x4250364D494E49ULL;    // "BP6MINI" (v2)
constexpr std::uint64_t kBpMagicV3 = 0x4250374D494E49ULL;  // "BP7MINI" (v3)

/// The only step-context layout this reader understands; any other value
/// in the version field is rejected by name rather than mis-parsed.
constexpr std::uint64_t kStepContextVersion = 1;

template <typename T>
void Append(std::vector<std::byte>& buf, const T& v) {
  const std::size_t old = buf.size();
  buf.resize(old + sizeof(T));
  std::memcpy(buf.data() + old, &v, sizeof(T));
}

/// Bounds-checked read that names the header field it was after, so a
/// truncated buffer reports *what* is missing, not just that something is.
template <typename T>
T Read(std::span<const std::byte> buf, std::size_t& pos, const char* field) {
  if (pos + sizeof(T) > buf.size()) {
    throw std::runtime_error(
        "adios: truncated step buffer reading " + std::string(field) +
        " (need " + std::to_string(sizeof(T)) + " bytes at offset " +
        std::to_string(pos) + ", have " + std::to_string(buf.size() - pos) +
        ")");
  }
  T v;
  std::memcpy(&v, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

/// Byte range of one variable's wire bytes inside a packed step buffer.
struct VarRecord {
  std::string name;
  codec::Kind kind = codec::Kind::kIdentity;
  std::size_t offset = 0;     // wire bytes
  std::size_t wire_len = 0;
  std::size_t raw_len = 0;
};

struct ParsedStep {
  int step = -1;
  int writer_rank = -1;
  StepContext context;
  std::vector<VarRecord> vars;
};

// Single bounds-checked parse shared by both unmarshal flavors: every
// length is validated against the remaining bytes before any read, so a
// truncated, oversized, or corrupt buffer throws a field-named error
// instead of reading out of bounds.
ParsedStep ParseStep(std::span<const std::byte> buffer) {
  std::size_t pos = 0;
  const auto magic = Read<std::uint64_t>(buffer, pos, "magic");
  if (magic != kBpMagic && magic != kBpMagicV3) {
    throw std::runtime_error("adios: bad BP magic");
  }
  ParsedStep parsed;
  parsed.step = static_cast<int>(Read<std::int64_t>(buffer, pos, "step"));
  parsed.writer_rank =
      static_cast<int>(Read<std::int64_t>(buffer, pos, "writer_rank"));
  if (magic == kBpMagicV3) {
    const auto version =
        Read<std::uint64_t>(buffer, pos, "step-context version");
    if (version != kStepContextVersion) {
      throw std::runtime_error(
          "adios: unknown step-context version " + std::to_string(version) +
          " (this reader understands version " +
          std::to_string(kStepContextVersion) + ")");
    }
    parsed.context.run_id =
        Read<std::uint64_t>(buffer, pos, "step-context run_id");
    parsed.context.origin_span_id =
        Read<std::uint64_t>(buffer, pos, "step-context origin_span_id");
    parsed.context.origin_ts_ns =
        Read<std::int64_t>(buffer, pos, "step-context origin_ts_ns");
    parsed.context.origin_offset_ns =
        Read<std::int64_t>(buffer, pos, "step-context origin_offset_ns");
    if (!parsed.context.Valid()) {
      throw std::runtime_error(
          "adios: v3 step carries a null step-context run_id");
    }
  }
  const auto count = Read<std::uint64_t>(buffer, pos, "variable count");
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = Read<std::uint64_t>(buffer, pos, "name length");
    if (name_len > buffer.size() - pos) {
      throw std::runtime_error(
          "adios: variable name overruns the step buffer (name length " +
          std::to_string(name_len) + ", " +
          std::to_string(buffer.size() - pos) + " byte(s) left)");
    }
    VarRecord record;
    record.name.assign(reinterpret_cast<const char*>(buffer.data() + pos),
                       name_len);
    pos += name_len;
    const auto kind = Read<std::uint64_t>(buffer, pos, "codec kind");
    if (!codec::KnownKind(kind)) {
      throw std::runtime_error(
          "adios: variable '" + record.name + "' carries unknown codec kind " +
          std::to_string(kind));
    }
    record.kind = static_cast<codec::Kind>(kind);
    record.raw_len = Read<std::uint64_t>(buffer, pos, "raw length");
    record.wire_len = Read<std::uint64_t>(buffer, pos, "wire length");
    if (record.kind == codec::Kind::kIdentity &&
        record.raw_len != record.wire_len) {
      throw std::runtime_error(
          "adios: identity-coded variable '" + record.name +
          "' has raw length " + std::to_string(record.raw_len) +
          " != wire length " + std::to_string(record.wire_len));
    }
    if (record.wire_len > buffer.size() - pos) {
      throw std::runtime_error(
          "adios: variable '" + record.name +
          "' data overruns the step buffer (wire length " +
          std::to_string(record.wire_len) + ", " +
          std::to_string(buffer.size() - pos) + " byte(s) left)");
    }
    record.offset = pos;
    pos += record.wire_len;
    parsed.vars.push_back(std::move(record));
  }
  if (pos != buffer.size()) {
    throw std::runtime_error(
        "adios: step buffer has " + std::to_string(buffer.size() - pos) +
        " trailing byte(s) after the last variable");
  }
  return parsed;
}

}  // namespace

core::BufferChain MarshalChain(const StepChain& staged, MarshalStats* stats) {
  core::BufferChain chain;
  std::vector<std::byte> header;

  auto flush_header = [&] {
    if (header.empty()) return;
    chain.Append(core::Buffer::TakeVector("marshal", std::move(header)));
    header = {};
  };

  // Context-free steps keep the v2 header byte for byte (pinned by test);
  // only a valid causal context upgrades the step to v3.
  Append(header, staged.context.Valid() ? kBpMagicV3 : kBpMagic);
  Append(header, static_cast<std::int64_t>(staged.step));
  Append(header, static_cast<std::int64_t>(staged.writer_rank));
  if (staged.context.Valid()) {
    Append(header, kStepContextVersion);
    Append(header, staged.context.run_id);
    Append(header, staged.context.origin_span_id);
    Append(header, staged.context.origin_ts_ns);
    Append(header, staged.context.origin_offset_ns);
  }
  Append(header, static_cast<std::uint64_t>(staged.variables.size()));
  for (const auto& [name, data] : staged.variables) {
    const auto spec_it = staged.codecs.find(name);
    const codec::Spec spec =
        spec_it == staged.codecs.end() ? codec::Spec{} : spec_it->second;
    const std::size_t raw_len = data.TotalBytes();

    Append(header, static_cast<std::uint64_t>(name.size()));
    const std::size_t old = header.size();
    header.resize(old + name.size());
    std::memcpy(header.data() + old, name.data(), name.size());
    Append(header, static_cast<std::uint64_t>(spec.kind));
    Append(header, static_cast<std::uint64_t>(raw_len));

    if (spec.Identity()) {
      Append(header, static_cast<std::uint64_t>(raw_len));
      flush_header();
      chain.Append(data);  // zero-copy: views ride to the transport pack
      if (stats != nullptr) {
        stats->raw_bytes += raw_len;
        stats->wire_bytes += raw_len;
      }
      continue;
    }
    // Coded path: the codec needs contiguous input.  Split staging puts
    // bulk arrays up as single-segment chains, so this packs only in the
    // multi-segment corner case.
    core::Buffer packed;
    std::span<const std::byte> raw;
    if (data.Contiguous()) {
      raw = data.ContiguousBytes();
    } else {
      packed = data.Pack("marshal");
      raw = packed.bytes();
    }
    core::Buffer wire = codec::Encode(spec, raw);
    Append(header, static_cast<std::uint64_t>(wire.size()));
    flush_header();
    if (stats != nullptr) {
      stats->raw_bytes += raw_len;
      stats->wire_bytes += wire.size();
    }
    chain.Append(core::BufferView(std::move(wire)));
  }
  flush_header();
  return chain;
}

std::vector<std::byte> MarshalStep(const StepPayload& payload) {
  StepChain staged;
  staged.step = payload.step;
  staged.writer_rank = payload.writer_rank;
  staged.context = payload.context;
  for (const auto& [name, data] : payload.variables) {
    staged.variables[name] = core::BufferChain(core::BufferView(data));
  }
  const core::BufferChain chain = MarshalChain(staged);
  std::vector<std::byte> out(chain.TotalBytes());
  chain.PackInto(out);
  return out;
}

StepPayload UnmarshalStep(std::span<const std::byte> buffer) {
  const ParsedStep parsed = ParseStep(buffer);
  StepPayload payload;
  payload.step = parsed.step;
  payload.writer_rank = parsed.writer_rank;
  payload.context = parsed.context;
  for (const VarRecord& record : parsed.vars) {
    const auto wire = buffer.subspan(record.offset, record.wire_len);
    payload.variables[record.name] =
        record.kind == codec::Kind::kIdentity
            ? core::Buffer::CopyOf("marshal", wire)
            : codec::Decode(record.kind, wire, record.raw_len);
    payload.raw_bytes += record.raw_len;
    payload.wire_bytes += record.wire_len;
  }
  return payload;
}

StepPayload UnmarshalShared(const core::Buffer& packed) {
  const ParsedStep parsed = ParseStep(packed.bytes());
  StepPayload payload;
  payload.step = parsed.step;
  payload.writer_rank = parsed.writer_rank;
  payload.context = parsed.context;
  for (const VarRecord& record : parsed.vars) {
    payload.variables[record.name] =
        record.kind == codec::Kind::kIdentity
            ? packed.Slice(record.offset, record.wire_len)
            : codec::Decode(
                  record.kind,
                  packed.bytes().subspan(record.offset, record.wire_len),
                  record.raw_len);
    payload.raw_bytes += record.raw_len;
    payload.wire_bytes += record.wire_len;
  }
  return payload;
}

}  // namespace adios
