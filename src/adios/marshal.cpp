#include "adios/marshal.hpp"

#include <cstring>
#include <stdexcept>

namespace adios {

namespace {

constexpr std::uint64_t kBpMagic = 0x4250354D494E49ULL;  // "BP5MINI"

template <typename T>
void Append(std::vector<std::byte>& buf, const T& v) {
  const std::size_t old = buf.size();
  buf.resize(old + sizeof(T));
  std::memcpy(buf.data() + old, &v, sizeof(T));
}

template <typename T>
T Read(std::span<const std::byte> buf, std::size_t& pos) {
  if (pos + sizeof(T) > buf.size()) {
    throw std::runtime_error("adios: marshal buffer underrun");
  }
  T v;
  std::memcpy(&v, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

}  // namespace

std::vector<std::byte> MarshalStep(const StepPayload& payload) {
  std::vector<std::byte> buf;
  std::size_t reserve = 32;
  for (const auto& [name, data] : payload.variables) {
    reserve += 16 + name.size() + data.size();
  }
  buf.reserve(reserve);

  Append(buf, kBpMagic);
  Append(buf, static_cast<std::int64_t>(payload.step));
  Append(buf, static_cast<std::int64_t>(payload.writer_rank));
  Append(buf, static_cast<std::uint64_t>(payload.variables.size()));
  for (const auto& [name, data] : payload.variables) {
    Append(buf, static_cast<std::uint64_t>(name.size()));
    const std::size_t old = buf.size();
    buf.resize(old + name.size());
    std::memcpy(buf.data() + old, name.data(), name.size());
    Append(buf, static_cast<std::uint64_t>(data.size()));
    const std::size_t data_at = buf.size();
    buf.resize(data_at + data.size());
    if (!data.empty()) {
      std::memcpy(buf.data() + data_at, data.data(), data.size());
    }
  }
  return buf;
}

StepPayload UnmarshalStep(std::span<const std::byte> buffer) {
  std::size_t pos = 0;
  if (Read<std::uint64_t>(buffer, pos) != kBpMagic) {
    throw std::runtime_error("adios: bad BP magic");
  }
  StepPayload payload;
  payload.step = static_cast<int>(Read<std::int64_t>(buffer, pos));
  payload.writer_rank = static_cast<int>(Read<std::int64_t>(buffer, pos));
  const auto count = Read<std::uint64_t>(buffer, pos);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = Read<std::uint64_t>(buffer, pos);
    if (pos + name_len > buffer.size()) {
      throw std::runtime_error("adios: marshal name underrun");
    }
    std::string name(reinterpret_cast<const char*>(buffer.data() + pos),
                     name_len);
    pos += name_len;
    const auto data_len = Read<std::uint64_t>(buffer, pos);
    if (pos + data_len > buffer.size()) {
      throw std::runtime_error("adios: marshal data underrun");
    }
    std::vector<std::byte> data(buffer.begin() + static_cast<std::ptrdiff_t>(pos),
                                buffer.begin() +
                                    static_cast<std::ptrdiff_t>(pos + data_len));
    pos += data_len;
    payload.variables[name] = std::move(data);
  }
  if (pos != buffer.size()) {
    throw std::runtime_error("adios: marshal trailing bytes");
  }
  return payload;
}

}  // namespace adios
