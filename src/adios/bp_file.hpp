// BP file engine: the file-based counterpart of the SST stream (ADIOS2's
// BP4/BP5 engines).  Each rank appends marshaled steps to its own .bp file;
// a reader can re-open the file and iterate steps.  Used for file-based
// transport ablations and as a second checkpoint format.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>

#include "adios/marshal.hpp"

namespace adios {

class BpFileWriter {
 public:
  /// Creates/truncates `<path>`.
  explicit BpFileWriter(const std::string& path);

  void BeginStep(int step);
  void Put(const std::string& name, std::span<const std::byte> data);
  /// Zero-copy Put of a scatter-gather chain; segments are streamed to the
  /// file at EndStep without ever being flattened in memory.  A non-identity
  /// `spec` routes the variable through codec::Encode at EndStep — the same
  /// codec plane the SST stream uses, so checkpoints compress identically.
  void PutChain(const std::string& name, core::BufferChain chain,
                codec::Spec spec = {});
  /// Appends the marshaled step, prefixed by its byte length.  Segments are
  /// written in wire order directly from the staged chains (no pack copy).
  void EndStep();
  void Close();

  [[nodiscard]] std::size_t BytesWritten() const { return bytes_written_; }
  /// Cumulative raw/wire variable bytes across all steps written.
  [[nodiscard]] const MarshalStats& CodecStats() const { return codec_stats_; }

 private:
  std::ofstream out_;
  std::string path_;
  StepChain staged_;
  bool step_open_ = false;
  std::size_t bytes_written_ = 0;
  MarshalStats codec_stats_;
};

class BpFileReader {
 public:
  explicit BpFileReader(const std::string& path);

  /// Next step in file order, or nullopt at end.
  std::optional<StepPayload> NextStep();

 private:
  std::ifstream in_;
  std::string path_;
};

}  // namespace adios
