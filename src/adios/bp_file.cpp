#include "adios/bp_file.hpp"

#include <stdexcept>

#include "instrument/provenance.hpp"
#include "instrument/tracer.hpp"

namespace adios {

BpFileWriter::BpFileWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!out_) throw std::runtime_error("adios: cannot open " + path);
}

void BpFileWriter::BeginStep(int step) {
  if (step_open_) throw std::runtime_error("adios: step already open");
  staged_ = StepChain{};
  staged_.step = step;
  // Same causal stamping as SstWriter: checkpoint steps carry their origin
  // so replay/analysis tools can attribute file steps to sim-side spans.
  if (const auto* provenance = instrument::CurrentProvenance();
      provenance != nullptr && provenance->Valid()) {
    staged_.context.run_id = provenance->run_id;
    staged_.context.origin_span_id = provenance->origin_span_id;
    staged_.context.origin_ts_ns = provenance->origin_ts_ns;
    staged_.context.origin_offset_ns = provenance->origin_offset_ns;
  }
  step_open_ = true;
}

void BpFileWriter::Put(const std::string& name,
                       std::span<const std::byte> data) {
  PutChain(name, core::BufferChain(
                     core::BufferView(core::Buffer::CopyOf("marshal", data))));
}

void BpFileWriter::PutChain(const std::string& name, core::BufferChain chain,
                            codec::Spec spec) {
  if (!step_open_) throw std::runtime_error("adios: Put outside a step");
  staged_.variables[name] = std::move(chain);
  if (!spec.Identity()) staged_.codecs[name] = spec;
}

void BpFileWriter::EndStep() {
  if (!step_open_) throw std::runtime_error("adios: EndStep outside a step");
  instrument::Span span("bpfile.write");
  const core::BufferChain chain = MarshalChain(staged_, &codec_stats_);
  const std::uint64_t length = chain.TotalBytes();
  out_.write(reinterpret_cast<const char*>(&length), sizeof(length));
  for (const core::BufferView& segment : chain.Segments()) {
    out_.write(reinterpret_cast<const char*>(segment.data()),
               static_cast<std::streamsize>(segment.size()));
  }
  if (!out_) throw std::runtime_error("adios: write failed: " + path_);
  bytes_written_ += sizeof(length) + length;
  staged_ = StepChain{};
  step_open_ = false;
}

void BpFileWriter::Close() {
  if (step_open_) throw std::runtime_error("adios: Close with open step");
  out_.flush();
  out_.close();
}

BpFileReader::BpFileReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) throw std::runtime_error("adios: cannot open " + path);
}

std::optional<StepPayload> BpFileReader::NextStep() {
  std::uint64_t length = 0;
  in_.read(reinterpret_cast<char*>(&length), sizeof(length));
  if (in_.eof()) return std::nullopt;
  if (!in_) throw std::runtime_error("adios: read failed: " + path_);
  std::vector<std::byte> buffer(length);
  in_.read(reinterpret_cast<char*>(buffer.data()),
           static_cast<std::streamsize>(length));
  if (!in_) throw std::runtime_error("adios: truncated step in " + path_);
  // Adopt the freshly read bytes and slice them zero-copy: the variables
  // share the step buffer instead of each owning a copy.
  return UnmarshalShared(
      core::Buffer::TakeVector("marshal", std::move(buffer)));
}

}  // namespace adios
