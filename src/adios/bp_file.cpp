#include "adios/bp_file.hpp"

#include <stdexcept>

namespace adios {

BpFileWriter::BpFileWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!out_) throw std::runtime_error("adios: cannot open " + path);
}

void BpFileWriter::BeginStep(int step) {
  if (step_open_) throw std::runtime_error("adios: step already open");
  staged_ = StepPayload{};
  staged_.step = step;
  step_open_ = true;
}

void BpFileWriter::Put(const std::string& name,
                       std::span<const std::byte> data) {
  if (!step_open_) throw std::runtime_error("adios: Put outside a step");
  staged_.variables[name].assign(data.begin(), data.end());
}

void BpFileWriter::EndStep() {
  if (!step_open_) throw std::runtime_error("adios: EndStep outside a step");
  const std::vector<std::byte> buffer = MarshalStep(staged_);
  const std::uint64_t length = buffer.size();
  out_.write(reinterpret_cast<const char*>(&length), sizeof(length));
  out_.write(reinterpret_cast<const char*>(buffer.data()),
             static_cast<std::streamsize>(buffer.size()));
  if (!out_) throw std::runtime_error("adios: write failed: " + path_);
  bytes_written_ += sizeof(length) + buffer.size();
  staged_ = StepPayload{};
  step_open_ = false;
}

void BpFileWriter::Close() {
  if (step_open_) throw std::runtime_error("adios: Close with open step");
  out_.flush();
  out_.close();
}

BpFileReader::BpFileReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) throw std::runtime_error("adios: cannot open " + path);
}

std::optional<StepPayload> BpFileReader::NextStep() {
  std::uint64_t length = 0;
  in_.read(reinterpret_cast<char*>(&length), sizeof(length));
  if (in_.eof()) return std::nullopt;
  if (!in_) throw std::runtime_error("adios: read failed: " + path_);
  std::vector<std::byte> buffer(length);
  in_.read(reinterpret_cast<char*>(buffer.data()),
           static_cast<std::streamsize>(length));
  if (!in_) throw std::runtime_error("adios: truncated step in " + path_);
  return UnmarshalStep(buffer);
}

}  // namespace adios
