#include "adios/sst.hpp"

#include <cstring>
#include <stdexcept>

namespace adios {

namespace {

// Wire tags (user tag space of the world communicator).
constexpr int kTagSstMsg = 8001;  // data plane: 1-byte kind + payload
constexpr int kTagSstAck = 8002;  // control plane: reader -> writer acks

constexpr std::byte kKindData{0};
constexpr std::byte kKindEos{1};

void TrackMarshal(std::ptrdiff_t delta) {
  if (auto* tracker = instrument::CurrentTracker()) {
    if (delta > 0) {
      tracker->Allocate("marshal", static_cast<std::size_t>(delta));
    } else if (delta < 0) {
      tracker->Release("marshal", static_cast<std::size_t>(-delta));
    }
  }
}

}  // namespace

SstWriter::SstWriter(mpimini::Comm world, int reader_world_rank,
                     SstParams params)
    : world_(world), reader_(reader_world_rank), params_(params) {
  if (params_.queue_limit < 1) {
    throw std::invalid_argument("adios: SST queue_limit must be >= 1");
  }
}

void SstWriter::DrainAcks(int target_in_flight) {
  while (static_cast<int>(in_flight_.size()) > target_in_flight) {
    world_.RecvValue<std::int32_t>(reader_, kTagSstAck);
    ++stats_.control_messages;
    TrackMarshal(-static_cast<std::ptrdiff_t>(in_flight_.front()));
    in_flight_.pop_front();
  }
}

void SstWriter::BeginStep(int step) {
  if (closed_) throw std::runtime_error("adios: BeginStep after Close");
  if (step_open_) throw std::runtime_error("adios: step already open");
  DrainAcks(params_.queue_limit - 1);
  staged_ = StepPayload{};
  staged_.step = step;
  staged_.writer_rank = world_.Rank();
  step_open_ = true;
}

void SstWriter::Put(const std::string& name, std::span<const std::byte> data) {
  if (!step_open_) throw std::runtime_error("adios: Put outside a step");
  auto& slot = staged_.variables[name];
  TrackMarshal(static_cast<std::ptrdiff_t>(data.size()) -
               static_cast<std::ptrdiff_t>(slot.size()));
  slot.assign(data.begin(), data.end());
}

void SstWriter::EndStep() {
  if (!step_open_) throw std::runtime_error("adios: EndStep outside a step");
  std::vector<std::byte> buffer = MarshalStep(staged_);
  TrackMarshal(static_cast<std::ptrdiff_t>(buffer.size()));

  std::vector<std::byte> message(1 + buffer.size());
  message[0] = kKindData;
  std::memcpy(message.data() + 1, buffer.data(), buffer.size());
  world_.SendBytes(reader_, kTagSstMsg, message.data(), message.size());

  // The staged variables are released, but the packed buffer stays
  // attributed to this writer until the reader acks (SST staging queue).
  TrackMarshal(-static_cast<std::ptrdiff_t>(staged_.TotalBytes()));
  ++stats_.steps;
  stats_.payload_bytes += buffer.size();
  staged_ = StepPayload{};
  step_open_ = false;
  in_flight_.push_back(buffer.size());
}

void SstWriter::Close() {
  if (closed_) return;
  if (step_open_) throw std::runtime_error("adios: Close with open step");
  const std::byte eos = kKindEos;
  world_.SendBytes(reader_, kTagSstMsg, &eos, 1);
  ++stats_.control_messages;
  DrainAcks(0);
  closed_ = true;
}

SstReader::SstReader(mpimini::Comm world, std::vector<int> writer_world_ranks,
                     SstParams params)
    : world_(world),
      writers_(std::move(writer_world_ranks)),
      open_(writers_.size(), true),
      params_(params) {}

std::optional<SstReader::Step> SstReader::NextStep() {
  Step out;
  bool any = false;
  for (std::size_t w = 0; w < writers_.size(); ++w) {
    if (!open_[w]) continue;
    mpimini::Message message = world_.RecvBytes(writers_[w], kTagSstMsg);
    if (message.payload.empty()) {
      throw std::runtime_error("adios: empty SST message");
    }
    if (message.payload[0] == kKindEos) {
      open_[w] = false;
      ++stats_.control_messages;
      continue;
    }
    StepPayload payload = UnmarshalStep(
        std::span<const std::byte>(message.payload.data() + 1,
                                   message.payload.size() - 1));
    stats_.payload_bytes += message.payload.size() - 1;
    // Ack immediately: the writer's staging slot is free once the payload
    // is on the endpoint.
    world_.SendValue<std::int32_t>(writers_[w], kTagSstAck,
                                   static_cast<std::int32_t>(payload.step));
    ++stats_.control_messages;

    if (any && payload.step != out.step) {
      throw std::runtime_error("adios: writers out of step");
    }
    out.step = payload.step;
    out.payloads[payload.writer_rank] = std::move(payload);
    any = true;
  }
  if (!any) return std::nullopt;
  ++stats_.steps;
  return out;
}

}  // namespace adios
