#include "adios/sst.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "instrument/flight_recorder.hpp"
#include "instrument/metrics.hpp"
#include "instrument/provenance.hpp"
#include "instrument/tracer.hpp"

namespace adios {

namespace {

// Wire tags (user tag space of the world communicator).
constexpr int kTagSstMsg = 8001;  // data plane: 1-byte kind + payload
constexpr int kTagSstAck = 8002;  // control plane: reader -> writer acks

constexpr std::byte kKindData{0};
constexpr std::byte kKindEos{1};

void TrackMarshal(std::ptrdiff_t delta) {
  if (auto* tracker = instrument::CurrentTracker()) {
    if (delta > 0) {
      tracker->Allocate("marshal", static_cast<std::size_t>(delta));
    } else if (delta < 0) {
      tracker->Release("marshal", static_cast<std::size_t>(-delta));
    }
  }
}

}  // namespace

SstWriter::SstWriter(mpimini::Comm world, int reader_world_rank,
                     SstParams params)
    : world_(world), reader_(reader_world_rank), params_(params) {
  if (params_.queue_limit < 1) {
    throw std::invalid_argument("adios: SST queue_limit must be >= 1");
  }
}

void SstWriter::DrainAcks(int target_in_flight) {
  // Stall time is the writer-side cost of backpressure: the reader has not
  // freed a staging slot yet, so the sim rank sits in this loop.  Timed
  // only when the metrics plane is installed.
  instrument::MetricsRegistry* metrics = instrument::CurrentMetrics();
  const bool will_block = static_cast<int>(in_flight_.size()) > target_in_flight;
  const bool timing =
      will_block && (metrics != nullptr ||
                     instrument::CurrentFlightRecorder() != nullptr);
  const std::int64_t begin_ns = timing ? instrument::Tracer::NowNs() : 0;
  const int blocked_step = will_block ? in_flight_.front().step : -1;
  while (static_cast<int>(in_flight_.size()) > target_in_flight) {
    const auto ack = world_.RecvValue<std::int32_t>(reader_, kTagSstAck);
    ++stats_.control_messages;
    const InFlight& front = in_flight_.front();
    if (static_cast<int>(ack) != front.step) {
      // The stream is FIFO per (reader, tag), so acks must land in ship
      // order; a mismatch means the reader acked a step it never received
      // (or the control plane lost sync) — fail loudly, never silently
      // free the wrong staging slot.
      throw std::runtime_error(
          "adios: SST ack mismatch: reader acked step " +
          std::to_string(ack) + " but the oldest in-flight step is " +
          std::to_string(front.step) + " (" +
          std::to_string(in_flight_.size()) + " in flight)");
    }
    TrackMarshal(-static_cast<std::ptrdiff_t>(front.bytes));
    in_flight_.pop_front();
    queue_depth_.store(static_cast<int>(in_flight_.size()),
                       std::memory_order_relaxed);
  }
  if (timing) {
    const double stalled =
        static_cast<double>(instrument::Tracer::NowNs() - begin_ns) * 1e-9;
    if (metrics != nullptr) metrics->Add("sst.stall_seconds", stalled);
    // Queue-full block: the forensic step is the oldest in-flight step the
    // writer was waiting on when it blocked (the reader's position).
    instrument::RecordFlightEvent(instrument::FlightEventKind::kQueueBlock,
                                  "sst.queue_full", blocked_step, stalled);
  }
}

void SstWriter::BeginStep(int step) {
  owner_.Check("adios::SstWriter::BeginStep");
  if (closed_) throw std::runtime_error("adios: BeginStep after Close");
  if (step_open_) throw std::runtime_error("adios: step already open");
  if (auto* metrics = instrument::CurrentMetrics()) {
    // A full staging queue means this BeginStep must block until the reader
    // acks — SST's "block" flow-control decision (vs dropping the step).
    if (static_cast<int>(in_flight_.size()) >= params_.queue_limit) {
      metrics->Add("sst.block_decisions", 1.0);
    }
    metrics->Set("sst.queue_depth", static_cast<double>(in_flight_.size()));
  }
  DrainAcks(params_.queue_limit - 1);
  staged_ = StepChain{};
  staged_.step = step;
  staged_.writer_rank = world_.Rank();
  // Causal context: when the step carries provenance (installed by the
  // workflow loop, or re-installed by the async worker), it rides the v3
  // wire header so the endpoint can attribute its work to this step.
  if (const auto* provenance = instrument::CurrentProvenance();
      provenance != nullptr && provenance->Valid()) {
    staged_.context.run_id = provenance->run_id;
    staged_.context.origin_span_id = provenance->origin_span_id;
    staged_.context.origin_ts_ns = provenance->origin_ts_ns;
    staged_.context.origin_offset_ns = provenance->origin_offset_ns;
  }
  step_open_ = true;
}

void SstWriter::Put(const std::string& name, std::span<const std::byte> data) {
  // Value-semantics wrapper: one counted copy into an owned "marshal"
  // buffer, which tracks/releases its bytes automatically.
  PutBuffer(name, core::Buffer::CopyOf("marshal", data));
}

void SstWriter::PutBuffer(const std::string& name, core::Buffer data) {
  PutChain(name, core::BufferChain(core::BufferView(std::move(data))));
}

void SstWriter::PutChain(const std::string& name, core::BufferChain chain,
                         codec::Spec spec) {
  owner_.Check("adios::SstWriter::PutChain");
  if (!step_open_) throw std::runtime_error("adios: Put outside a step");
  staged_.variables[name] = std::move(chain);
  if (!spec.Identity()) staged_.codecs[name] = spec;
}

void SstWriter::EndStep() {
  owner_.Check("adios::SstWriter::EndStep");
  if (!step_open_) throw std::runtime_error("adios: EndStep outside a step");
  // One message chain: 1-byte kind + marshaled step, packed exactly once
  // inside SendGather (the transport-boundary copy).
  instrument::Span marshal_span("adios.marshal");
  core::BufferChain message;
  message.Append(core::Buffer::TakeVector(
      "", std::vector<std::byte>{kKindData}));
  MarshalStats marshal_stats;
  message.Append(MarshalChain(staged_, &marshal_stats));
  marshal_span.End();
  stats_.raw_bytes += marshal_stats.raw_bytes;
  stats_.wire_bytes += marshal_stats.wire_bytes;
  raw_bytes_.store(stats_.raw_bytes, std::memory_order_relaxed);
  wire_bytes_.store(stats_.wire_bytes, std::memory_order_relaxed);
  const std::size_t payload_bytes = message.TotalBytes() - 1;
  {
    instrument::Span send_span("sst.send");
    // Flow start: the producing end of the causal arrow the Chrome trace
    // draws from this sst.send to the endpoint's matching sst.recv.
    if (staged_.context.Valid()) {
      if (auto* tracer = instrument::CurrentTracer()) {
        tracer->Flow(staged_.context.origin_span_id, staged_.step,
                     /*start=*/true);
      }
    }
    world_.SendGather(reader_, kTagSstMsg, message);
  }

  // Staged variables release as staged_ is reset, but the packed in-flight
  // bytes stay attributed to this writer until the reader acks (SST staging
  // queue) — the mailbox buffer itself is untracked, so account it here.
  TrackMarshal(static_cast<std::ptrdiff_t>(payload_bytes));
  ++stats_.steps;
  stats_.payload_bytes += payload_bytes;
  const int shipped_step = staged_.step;
  staged_ = StepChain{};
  step_open_ = false;
  in_flight_.push_back({shipped_step, payload_bytes});
  queue_depth_.store(static_cast<int>(in_flight_.size()),
                     std::memory_order_relaxed);
  if (auto* metrics = instrument::CurrentMetrics()) {
    metrics->Set("sst.queue_depth", static_cast<double>(in_flight_.size()));
    metrics->SetTotal("sst.payload_bytes",
                      static_cast<double>(stats_.payload_bytes));
    metrics->SetTotal("sst.steps", static_cast<double>(stats_.steps));
    // Writer-side only: the reader keeps its own SstStats, but feeding the
    // same bytes into the metrics plane from both ends would double the
    // global sums ReduceMetrics computes.
    metrics->SetTotal("sst.bytes_raw", static_cast<double>(stats_.raw_bytes));
    metrics->SetTotal("sst.bytes_wire",
                      static_cast<double>(stats_.wire_bytes));
  }
}

void SstWriter::Close() {
  owner_.Check("adios::SstWriter::Close");
  if (closed_) return;
  if (step_open_) throw std::runtime_error("adios: Close with open step");
  const std::byte eos = kKindEos;
  world_.SendBytes(reader_, kTagSstMsg, &eos, 1);
  ++stats_.control_messages;
  DrainAcks(0);
  closed_ = true;
}

SstReader::SstReader(mpimini::Comm world, std::vector<int> writer_world_ranks,
                     SstParams params)
    : world_(world),
      writers_(std::move(writer_world_ranks)),
      open_(writers_.size(), true),
      params_(params),
      stash_(writers_.size()) {}

std::optional<SstReader::Step> SstReader::NextStep() {
  instrument::Span recv_span("sst.recv");
  Step out;
  bool any = false;
  // Writers whose message for this step has not been consumed yet.  Drained
  // in ARRIVAL order, not index order: a fixed-order drain would sit in a
  // blocking receive on writer 0 while later writers' payloads wait in the
  // mailbox unacked — head-of-line blocking that stalls every fast writer
  // behind the slowest one's backpressure window.
  std::vector<std::size_t> pending;
  pending.reserve(writers_.size());
  for (std::size_t w = 0; w < writers_.size(); ++w) {
    if (open_[w]) pending.push_back(w);
  }
  while (!pending.empty()) {
    // Pick the first pending writer with a message at hand: stashed from an
    // earlier out-of-turn arrival, or waiting in the mailbox right now.
    // (Stash first — a stashed message from writer w predates anything
    // still in w's mailbox, and the per-writer FIFO order must hold.)
    std::size_t slot = pending.size();
    bool from_stash = false;
    for (std::size_t i = 0; i < pending.size() && slot == pending.size();
         ++i) {
      if (!stash_[pending[i]].empty()) {
        slot = i;
        from_stash = true;
      }
    }
    for (std::size_t i = 0; i < pending.size() && slot == pending.size();
         ++i) {
      if (world_.HasMessage(writers_[pending[i]], kTagSstMsg)) slot = i;
    }
    if (slot == pending.size()) {
      // Nothing at hand: block until ANY writer's message arrives — never
      // on one specific writer, which would deadlock if that writer is
      // itself gated on an ack this reader owes a different writer.  The
      // arrival may be from a writer already served this round running a
      // step ahead (queue_limit >= 2); it parks in the stash and opens
      // that writer's next round.
      mpimini::Message arrival =
          world_.RecvBytes(mpimini::kAnySource, kTagSstMsg);
      const auto sender =
          std::find(writers_.begin(), writers_.end(), arrival.source);
      if (sender == writers_.end()) {
        throw std::runtime_error(
            "adios: SST message from unknown writer rank " +
            std::to_string(arrival.source));
      }
      stash_[static_cast<std::size_t>(sender - writers_.begin())].push_back(
          std::move(arrival.payload));
      continue;
    }
    const std::size_t w = pending[slot];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(slot));
    core::Buffer message;
    if (from_stash) {
      message = std::move(stash_[w].front());
      stash_[w].pop_front();
    } else {
      message = world_.RecvBuffer(writers_[w], kTagSstMsg);
    }
    if (message.empty()) {
      throw std::runtime_error("adios: empty SST message");
    }
    if (message[0] == kKindEos) {
      open_[w] = false;
      ++stats_.control_messages;
      continue;
    }
    // Zero-copy unmarshal: the payload variables are slices of the received
    // transport buffer, which stays alive as long as any slice is held.
    StepPayload payload =
        UnmarshalShared(message.Slice(1, message.size() - 1));
    // Flow finish: close the causal arrow from the writer's sst.send.  One
    // per payload — a fan-in step draws one arrow per contributing writer.
    if (payload.context.Valid()) {
      if (auto* tracer = instrument::CurrentTracer()) {
        tracer->Flow(payload.context.origin_span_id, payload.step,
                     /*start=*/false);
      }
    }
    stats_.payload_bytes += message.size() - 1;
    stats_.raw_bytes += payload.raw_bytes;
    stats_.wire_bytes += payload.wire_bytes;
    // Ack immediately: the writer's staging slot is free once the payload
    // is on the endpoint.
    world_.SendValue<std::int32_t>(writers_[w], kTagSstAck,
                                   static_cast<std::int32_t>(payload.step));
    ++stats_.control_messages;

    if (any && payload.step != out.step) {
      throw std::runtime_error("adios: writers out of step");
    }
    out.step = payload.step;
    out.payloads[payload.writer_rank] = std::move(payload);
    any = true;
  }
  if (!any) return std::nullopt;
  ++stats_.steps;
  return out;
}

}  // namespace adios
