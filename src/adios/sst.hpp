// Sustainable Staging Transport (SST) stand-in: a streaming writer/reader
// pair over mpimini messages, reproducing the in transit architecture the
// paper configures (classic streaming data architecture, BP marshaling,
// bounded staging queue).
//
// Control plane (the TCP-socket role): step announcements, acks, and
// end-of-stream markers.  Data plane (the UCX role): the marshaled BP
// buffer.  Flow control: a writer may have at most `queue_limit`
// unacknowledged steps in flight; beyond that BeginStep blocks until the
// reader acks — this bounds the writer-side staging memory exactly the way
// SST's queue limit does, which is what keeps the simulation-node memory
// footprint independent of the endpoint count (Fig 6).
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "adios/marshal.hpp"
#include "core/thread_annotations.hpp"
#include "instrument/memory_tracker.hpp"
#include "mpimini/comm.hpp"

namespace adios {

struct SstParams {
  /// Max unacknowledged steps in flight per writer (SST QueueLimit).
  int queue_limit = 1;
};

/// Cumulative transport statistics (writer or reader side).
struct SstStats {
  std::uint64_t steps = 0;
  std::size_t payload_bytes = 0;
  std::uint64_t control_messages = 0;
  /// Codec-plane accounting: decoded (raw) vs as-transported (wire) variable
  /// bytes.  Equal unless at least one variable ships a non-identity codec.
  std::size_t raw_bytes = 0;
  std::size_t wire_bytes = 0;
};

/// Simulation-side SST endpoint: one per sim rank, streaming to a fixed
/// endpoint (reader) rank of the same world communicator.
///
/// Owned by its sim rank's thread: the staging queue (in_flight_) and
/// staged step are lock-free by the single-owner contract, machine-checked
/// under NSM_THREAD_CHECKS.  Cross-rank flow control happens through
/// mpimini messages, never through shared mutation of this object.
class SstWriter {
 public:
  SstWriter(mpimini::Comm world, int reader_world_rank, SstParams params = {});

  /// Begin step `step`; blocks while the staging queue is full.
  void BeginStep(int step);
  /// Stage a named variable for the current step (copies the bytes into the
  /// marshal buffer; tracked under category "marshal").
  void Put(const std::string& name, std::span<const std::byte> data);
  /// Zero-copy Put: stage a view of an owned data-plane buffer.  No bytes
  /// move until EndStep's transport pack.
  void PutBuffer(const std::string& name, core::Buffer data);
  /// Zero-copy Put of a scatter-gather chain (e.g. svtk::SerializeChain
  /// output); the segments ride to the wire without being flattened here.
  /// A non-identity `spec` routes the variable through codec::Encode at
  /// EndStep (on this writer's owning thread — the async worker in async
  /// pipeline mode).
  void PutChain(const std::string& name, core::BufferChain chain,
                codec::Spec spec = {});
  /// Marshal and ship the staged step to the reader: the staged chains are
  /// packed exactly once, into the outgoing transport buffer.
  void EndStep();
  /// Send end-of-stream and drain outstanding acks.
  void Close();

  [[nodiscard]] const SstStats& Stats() const { return stats_; }

  /// Steps shipped but not yet acked — the live staging-queue occupancy
  /// (the heartbeat prints this next to queue_limit).  Reads a mirror of
  /// in_flight_.size(), so it is safe from any thread: in async-pipeline
  /// mode the worker thread owns the writer while the rank thread's
  /// heartbeat polls the depth.
  [[nodiscard]] int QueueDepth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int QueueLimit() const { return params_.queue_limit; }

  /// Cumulative raw/wire variable bytes shipped, readable from any thread
  /// (lock-free mirrors of the stats, for the rank thread's heartbeat while
  /// the async worker owns the writer).
  [[nodiscard]] std::size_t RawBytes() const {
    return raw_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t WireBytes() const {
    return wire_bytes_.load(std::memory_order_relaxed);
  }

 private:
  /// One shipped-but-unacked step: the step number the reader must echo in
  /// its ack, and the marshaled byte size still attributed to this writer.
  struct InFlight {
    int step = -1;
    std::size_t bytes = 0;
  };

  void DrainAcks(int required_credits);

  mpimini::Comm world_;
  int reader_ = -1;
  SstParams params_;
  SstStats stats_;
  /// Marshaled steps shipped but not yet acked: this memory stays
  /// attributed to the writer ("marshal" category) until the reader acks,
  /// exactly like SST's writer-side staging queue — the mechanism that
  /// keeps Fig 6's sim-node footprint bounded by queue_limit.  Acks must
  /// arrive in step order (the stream is FIFO); DrainAcks validates each
  /// ack against the front entry's step.
  std::deque<InFlight> in_flight_;
  /// Lock-free mirror of in_flight_.size() for cross-thread QueueDepth().
  std::atomic<int> queue_depth_{0};
  /// Lock-free mirrors of stats_.raw_bytes / stats_.wire_bytes for
  /// cross-thread RawBytes()/WireBytes().
  std::atomic<std::size_t> raw_bytes_{0};
  std::atomic<std::size_t> wire_bytes_{0};
  bool step_open_ = false;
  bool closed_ = false;
  StepChain staged_;
  /// Single-owner audit (no-op unless NSM_THREAD_CHECKS).
  core::ThreadOwnershipChecker owner_;
};

/// Endpoint-side SST: receives streams from a fixed set of writer ranks.
class SstReader {
 public:
  SstReader(mpimini::Comm world, std::vector<int> writer_world_ranks,
            SstParams params = {});

  /// One completed step: every live writer's payload, keyed by writer rank.
  struct Step {
    int step = -1;
    std::map<int, StepPayload> payloads;
  };

  /// Block until the next step is complete on all live writers (acking each
  /// writer as its payload arrives), or all writers closed (nullopt).
  std::optional<Step> NextStep();

  [[nodiscard]] const SstStats& Stats() const { return stats_; }

 private:
  mpimini::Comm world_;
  std::vector<int> writers_;
  std::vector<bool> open_;
  SstParams params_;
  SstStats stats_;
  /// Messages received out of turn, per writer index: when the reader blocks
  /// on "any writer" (arrival-order drain) it may pull a message from a
  /// writer already served this round (queue_limit >= 2 lets writers run a
  /// step ahead).  Those park here, FIFO, and open the writer's next round.
  std::vector<std::deque<core::Buffer>> stash_;
};

}  // namespace adios
