// BP-style variable marshaling: named byte blobs packed per step into a
// single contiguous buffer (the "data marshaling option" the paper
// configures ADIOS2's SST engine with).
//
// The marshal step is scatter-gather over data-plane views: MarshalChain
// emits small header segments interleaved with zero-copy views of the
// variables, and the one contiguous pack happens only at the transport
// boundary (mpimini::Comm::SendGather / BufferChain::Pack).  The value
// semantics MarshalStep/UnmarshalStep wrappers keep the old copying API for
// file engines and tests; UnmarshalShared slices the packed buffer without
// copying for the streaming (SST) receive path.
//
// Wire format (v2, magic "BP6MINI"): after the step header each variable
// carries a codec tag —
//
//   u64 name_len, name bytes,
//   u64 codec_kind   (codec::Kind wire value),
//   u64 raw_len      (decoded size in bytes),
//   u64 wire_len     (encoded size in bytes; == raw_len for identity),
//   wire bytes.
//
// Identity-coded variables keep the zero-copy staging path end to end;
// other codecs run through codec::Encode at marshal time and codec::Decode
// at unmarshal time.
//
// Wire format v3 (magic "BP7MINI") adds a per-step trace context between
// the writer_rank and the variable count (DESIGN.md §5d):
//
//   u64 context_version  (1 — any other value is rejected by name),
//   u64 run_id, u64 origin_span_id,
//   i64 origin_ts_ns, i64 origin_offset_ns.
//
// The v3 header is emitted only when a step actually carries provenance;
// context-free chains stay bit-identical to v2, so pre-v3 readers and
// files keep working unchanged (pinned by test).  Readers accept both.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "core/buffer.hpp"

namespace adios {

/// Per-step causal trace context as carried by the v3 wire header.
/// Producing rank and step number already live in the step header; the
/// context adds the origin identity needed to link endpoint spans back to
/// the sim-side step that caused them.  run_id == 0 means "no context"
/// and the step marshals as plain v2.
struct StepContext {
  std::uint64_t run_id = 0;
  std::uint64_t origin_span_id = 0;
  std::int64_t origin_ts_ns = 0;      ///< origin monotonic clock, ns
  std::int64_t origin_offset_ns = 0;  ///< origin offset to global time, ns

  [[nodiscard]] bool Valid() const { return run_id != 0; }
};

/// One step's worth of named variables from one writer.  Variables are
/// ref-counted data-plane buffers: after UnmarshalShared they are slices of
/// the received transport buffer (no copy; identity-coded variables only —
/// compressed variables always own freshly decoded storage); after
/// UnmarshalStep they own fresh storage.
struct StepPayload {
  int step = -1;
  int writer_rank = -1;
  /// Causal origin parsed from a v3 header (invalid for v2 buffers).
  StepContext context;
  std::map<std::string, core::Buffer> variables;
  /// Byte accounting filled by the unmarshal parse: decoded (raw) and
  /// as-transported (wire) totals over all variables.
  std::size_t raw_bytes = 0;
  std::size_t wire_bytes = 0;

  [[nodiscard]] std::size_t TotalBytes() const {
    std::size_t total = 0;
    for (const auto& [name, data] : variables) total += data.size();
    return total;
  }
};

/// Writer-side staging for one step: each variable is a scatter-gather
/// chain (e.g. svtk::SerializeChain output) that is never flattened before
/// the wire.  `codecs` selects a per-variable codec; absent entries ship
/// identity (zero-copy).
struct StepChain {
  int step = -1;
  int writer_rank = -1;
  /// When valid, the step marshals with the v3 header carrying it.
  StepContext context;
  std::map<std::string, core::BufferChain> variables;
  std::map<std::string, codec::Spec> codecs;

  [[nodiscard]] std::size_t TotalBytes() const {
    std::size_t total = 0;
    for (const auto& [name, chain] : variables) total += chain.TotalBytes();
    return total;
  }
};

/// Raw-vs-wire byte totals for one MarshalChain call (the writer-side twin
/// of StepPayload::raw_bytes/wire_bytes).
struct MarshalStats {
  std::size_t raw_bytes = 0;
  std::size_t wire_bytes = 0;
};

/// Marshal a staged step into a scatter-gather chain:
/// magic, step, writer_rank, [v3 context], count, then per variable the
/// record above.  The v3 header is used iff `staged.context.Valid()`.
/// Identity variables are appended as zero-copy views; coded variables are
/// encoded here (on the caller's thread — the async worker in async mode).
/// When `stats` is non-null the per-variable raw/wire totals are added to
/// it.
core::BufferChain MarshalChain(const StepChain& staged,
                               MarshalStats* stats = nullptr);

/// Pack a payload into a single BP-like buffer (value-semantics wrapper:
/// performs the one pack copy; all variables ship identity).
std::vector<std::byte> MarshalStep(const StepPayload& payload);

/// Inverse of MarshalStep; variables own fresh storage (one copy each;
/// coded variables are decoded).  Throws std::runtime_error naming the
/// offending header field on malformed input; never reads out of bounds.
StepPayload UnmarshalStep(std::span<const std::byte> buffer);

/// Zero-copy inverse: identity variables are slices sharing `packed`'s
/// block, valid for as long as any slice is held; coded variables own their
/// decoded bytes.  Same validation as UnmarshalStep.
StepPayload UnmarshalShared(const core::Buffer& packed);

}  // namespace adios
