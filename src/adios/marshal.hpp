// BP-style variable marshaling: named byte blobs packed per step into a
// single contiguous buffer (the "data marshaling option" the paper
// configures ADIOS2's SST engine with).
//
// The marshal step is scatter-gather over data-plane views: MarshalChain
// emits small header segments interleaved with zero-copy views of the
// variables, and the one contiguous pack happens only at the transport
// boundary (mpimini::Comm::SendGather / BufferChain::Pack).  The value
// semantics MarshalStep/UnmarshalStep wrappers keep the old copying API for
// file engines and tests; UnmarshalShared slices the packed buffer without
// copying for the streaming (SST) receive path.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/buffer.hpp"

namespace adios {

/// One step's worth of named variables from one writer.  Variables are
/// ref-counted data-plane buffers: after UnmarshalShared they are slices of
/// the received transport buffer (no copy); after UnmarshalStep they own
/// fresh storage.
struct StepPayload {
  int step = -1;
  int writer_rank = -1;
  std::map<std::string, core::Buffer> variables;

  [[nodiscard]] std::size_t TotalBytes() const {
    std::size_t total = 0;
    for (const auto& [name, data] : variables) total += data.size();
    return total;
  }
};

/// Writer-side staging for one step: each variable is a scatter-gather
/// chain (e.g. svtk::SerializeChain output) that is never flattened before
/// the wire.
struct StepChain {
  int step = -1;
  int writer_rank = -1;
  std::map<std::string, core::BufferChain> variables;

  [[nodiscard]] std::size_t TotalBytes() const {
    std::size_t total = 0;
    for (const auto& [name, chain] : variables) total += chain.TotalBytes();
    return total;
  }
};

/// Marshal a staged step into a scatter-gather chain:
/// magic, step, writer_rank, count, then per variable (name, size, bytes),
/// where the variable bytes are zero-copy views.
core::BufferChain MarshalChain(const StepChain& staged);

/// Pack a payload into a single BP-like buffer (value-semantics wrapper:
/// performs the one pack copy).
std::vector<std::byte> MarshalStep(const StepPayload& payload);

/// Inverse of MarshalStep; variables own fresh storage (one copy each).
/// Throws std::runtime_error on malformed input; never reads out of bounds.
StepPayload UnmarshalStep(std::span<const std::byte> buffer);

/// Zero-copy inverse: variables are slices sharing `packed`'s block, valid
/// for as long as any slice is held.  Same validation as UnmarshalStep.
StepPayload UnmarshalShared(const core::Buffer& packed);

}  // namespace adios
