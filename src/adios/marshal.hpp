// BP-style variable marshaling: named byte blobs packed per step into a
// single contiguous buffer (the "data marshaling option" the paper
// configures ADIOS2's SST engine with).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace adios {

/// One step's worth of named variables from one writer.
struct StepPayload {
  int step = -1;
  int writer_rank = -1;
  std::map<std::string, std::vector<std::byte>> variables;

  [[nodiscard]] std::size_t TotalBytes() const {
    std::size_t total = 0;
    for (const auto& [name, data] : variables) total += data.size();
    return total;
  }
};

/// Pack a payload into a single BP-like buffer:
/// magic, step, writer_rank, count, then per variable (name, size, bytes).
std::vector<std::byte> MarshalStep(const StepPayload& payload);

/// Inverse of MarshalStep; throws std::runtime_error on malformed input.
StepPayload UnmarshalStep(std::span<const std::byte> buffer);

}  // namespace adios
