#include "codec/codec.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "instrument/flight_recorder.hpp"
#include "instrument/metrics.hpp"
#include "instrument/tracer.hpp"

namespace codec {

namespace {

// Stream headers are fixed 16 (blockfloat) / 8 (shuffle_rle) bytes; both
// start with a one-byte version so the formats can evolve without a new
// Kind.
constexpr std::uint8_t kStreamVersion = 1;
constexpr std::size_t kBlockFloatHeaderBytes = 16;
constexpr std::size_t kShuffleRleHeaderBytes = 8;

// Blockfloat per-block storage modes.
constexpr std::uint8_t kBlockQuantized = 0;
constexpr std::uint8_t kBlockRaw = 1;       // non-finite present: verbatim
constexpr std::uint8_t kBlockZero = 2;      // max-abs == 0: no payload

// shuffle_rle flag bits (recorded in the stream, so decode is
// self-describing even when the encoder skipped a transform).
constexpr std::uint8_t kFlagDelta64 = 0x01;
// Incompressible-input fallback: the payload is the raw bytes verbatim
// (no delta, no shuffle, no RLE), so wire size never exceeds raw size by
// more than the 8-byte header.  Mutually exclusive with kFlagDelta64.
constexpr std::uint8_t kFlagRawStore = 0x02;

// PackBits-style RLE: control c in [0,127] is a literal run of c+1 bytes;
// c in [128,255] repeats the following byte (c - 126) times (runs of
// 2..129; the encoder only emits runs >= kMinRun).
constexpr std::size_t kMinRun = 3;
constexpr std::size_t kMaxRun = 129;
constexpr std::size_t kMaxLiteral = 128;

template <typename T>
void AppendValue(std::vector<std::byte>& out, const T& v) {
  const std::size_t old = out.size();
  out.resize(old + sizeof(T));
  std::memcpy(out.data() + old, &v, sizeof(T));
}

template <typename T>
T ReadValue(std::span<const std::byte> in, std::size_t& pos,
            const char* what) {
  if (pos + sizeof(T) > in.size()) {
    throw std::runtime_error(std::string("codec: truncated stream reading ") +
                             what);
  }
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

/// LSB-first bit packer for the blockfloat quantized payload.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::byte>& out) : out_(out) {}

  void Put(std::uint64_t value, int bits) {
    acc_ |= value << filled_;
    filled_ += bits;
    while (filled_ >= 8) {
      out_.push_back(static_cast<std::byte>(acc_ & 0xFF));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }
  void Flush() {
    if (filled_ > 0) {
      out_.push_back(static_cast<std::byte>(acc_ & 0xFF));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  std::vector<std::byte>& out_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

/// Matching LSB-first reader; bounds-checked against the stream window.
class BitReader {
 public:
  BitReader(std::span<const std::byte> in, std::size_t& pos)
      : in_(in), pos_(pos) {}

  std::uint64_t Get(int bits) {
    while (filled_ < bits) {
      if (pos_ >= in_.size()) {
        throw std::runtime_error(
            "codec: truncated blockfloat stream inside a quantized block");
      }
      acc_ |= static_cast<std::uint64_t>(in_[pos_++]) << filled_;
      filled_ += 8;
    }
    const std::uint64_t v = acc_ & ((bits == 64) ? ~0ULL : ((1ULL << bits) - 1));
    acc_ >>= bits;
    filled_ -= bits;
    return v;
  }

 private:
  std::span<const std::byte> in_;
  std::size_t& pos_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

void CheckBlockFloatArgs(std::size_t raw_bytes, int rate) {
  if (rate < kMinBlockFloatRate || rate > kMaxBlockFloatRate) {
    throw std::invalid_argument(
        "codec: blockfloat rate " + std::to_string(rate) + " outside [" +
        std::to_string(kMinBlockFloatRate) + ", " +
        std::to_string(kMaxBlockFloatRate) + "]");
  }
  if (raw_bytes % sizeof(double) != 0) {
    throw std::invalid_argument(
        "codec: blockfloat input of " + std::to_string(raw_bytes) +
        " bytes is not a whole number of f64 values");
  }
}

std::vector<std::byte> EncodeBlockFloat(std::span<const std::byte> raw,
                                        int rate) {
  CheckBlockFloatArgs(raw.size(), rate);
  const std::size_t count = raw.size() / sizeof(double);
  std::vector<std::byte> out;
  out.reserve(16 + raw.size() / 4);
  out.push_back(static_cast<std::byte>(kStreamVersion));
  out.push_back(static_cast<std::byte>(rate));
  for (int i = 0; i < 6; ++i) out.push_back(std::byte{0});
  AppendValue(out, static_cast<std::uint64_t>(count));

  const std::int64_t levels =
      (std::int64_t{1} << (rate - 1)) - 1;  // Q = 2^(rate-1) - 1
  std::array<double, kBlockFloatBlock> block;
  for (std::size_t begin = 0; begin < count; begin += kBlockFloatBlock) {
    const std::size_t n = std::min(kBlockFloatBlock, count - begin);
    std::memcpy(block.data(), raw.data() + begin * sizeof(double),
                n * sizeof(double));
    bool finite = true;
    double scale = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(block[i])) {
        finite = false;
        break;
      }
      scale = std::max(scale, std::fabs(block[i]));
    }
    if (!finite) {
      // NaN/Inf passthrough policy: the whole block is stored verbatim so
      // every non-finite bit pattern (including NaN payloads) round-trips
      // exactly.
      out.push_back(static_cast<std::byte>(kBlockRaw));
      const std::size_t old = out.size();
      out.resize(old + n * sizeof(double));
      std::memcpy(out.data() + old, block.data(), n * sizeof(double));
      continue;
    }
    if (scale == 0.0) {
      out.push_back(static_cast<std::byte>(kBlockZero));
      continue;
    }
    out.push_back(static_cast<std::byte>(kBlockQuantized));
    AppendValue(out, scale);
    BitWriter bits(out);
    for (std::size_t i = 0; i < n; ++i) {
      // q = round(v / m * Q) with |v| <= m, so |q| <= Q; the clamp only
      // guards pathological rounding.  Stored biased (q + Q) in `rate`
      // bits: range [0, 2Q] = [0, 2^rate - 2].
      std::int64_t q = std::llround(block[i] / scale *
                                    static_cast<double>(levels));
      q = std::max(-levels, std::min(levels, q));
      bits.Put(static_cast<std::uint64_t>(q + levels), rate);
    }
    bits.Flush();
  }
  return out;
}

std::vector<std::byte> DecodeBlockFloat(std::span<const std::byte> wire,
                                        std::size_t raw_size) {
  std::size_t pos = 0;
  const auto version = ReadValue<std::uint8_t>(wire, pos, "version");
  if (version != kStreamVersion) {
    throw std::runtime_error("codec: unsupported blockfloat stream version " +
                             std::to_string(version));
  }
  const int rate = ReadValue<std::uint8_t>(wire, pos, "rate");
  if (rate < kMinBlockFloatRate || rate > kMaxBlockFloatRate) {
    throw std::runtime_error("codec: blockfloat stream rate " +
                             std::to_string(rate) + " out of range");
  }
  for (int i = 0; i < 6; ++i) ReadValue<std::uint8_t>(wire, pos, "reserved");
  const auto count = ReadValue<std::uint64_t>(wire, pos, "value count");
  // Compare without multiplying: `count * 8` wraps mod 2^64, so a hostile
  // count of raw_size/8 + 2^61 would pass a product comparison and drive
  // the decode loop past the raw_size-byte output buffer.
  if (raw_size % sizeof(double) != 0 || count != raw_size / sizeof(double)) {
    throw std::runtime_error(
        "codec: blockfloat stream holds " + std::to_string(count) +
        " values but the declared raw size " + std::to_string(raw_size) +
        " bytes implies " + std::to_string(raw_size / sizeof(double)));
  }

  const std::int64_t levels = (std::int64_t{1} << (rate - 1)) - 1;
  std::vector<std::byte> out(raw_size);
  double* values = reinterpret_cast<double*>(out.data());
  for (std::size_t begin = 0; begin < count; begin += kBlockFloatBlock) {
    const std::size_t n = std::min(kBlockFloatBlock, count - begin);
    const auto mode = ReadValue<std::uint8_t>(wire, pos, "block mode");
    if (mode == kBlockRaw) {
      if (pos + n * sizeof(double) > wire.size()) {
        throw std::runtime_error(
            "codec: truncated blockfloat stream inside a raw block");
      }
      std::memcpy(out.data() + begin * sizeof(double), wire.data() + pos,
                  n * sizeof(double));
      pos += n * sizeof(double);
    } else if (mode == kBlockZero) {
      for (std::size_t i = 0; i < n; ++i) values[begin + i] = 0.0;
    } else if (mode == kBlockQuantized) {
      const double scale = ReadValue<double>(wire, pos, "block scale");
      BitReader bits(wire, pos);
      for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t q =
            static_cast<std::int64_t>(bits.Get(rate)) - levels;
        values[begin + i] =
            static_cast<double>(q) * scale / static_cast<double>(levels);
      }
    } else {
      throw std::runtime_error("codec: unknown blockfloat block mode " +
                               std::to_string(mode));
    }
  }
  if (pos != wire.size()) {
    throw std::runtime_error(
        "codec: blockfloat stream has " + std::to_string(wire.size() - pos) +
        " trailing byte(s)");
  }
  return out;
}

// The delta transform stores zigzag-folded wrap-around differences:
// d = v[i] - v[i-1] maps to (d << 1) ^ (d >> 63), so SMALL deltas of either
// sign occupy only the low byte planes.  Plain two's-complement deltas fail
// on oscillating sequences (hex connectivity visits corners out of index
// order): every negative delta turns planes 1..7 into 0xFF and the shuffle
// finds no runs.  Zigzag keeps both monotone and oscillating id streams
// compressible, and stays lossless for arbitrary u64 input.
void DeltaEncode64(std::vector<std::byte>& bytes) {
  const std::size_t n = bytes.size() / sizeof(std::uint64_t);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + i * sizeof(v), sizeof(v));
    const std::uint64_t d = v - prev;  // wrap-around: lossless for any input
    prev = v;
    const auto sd = static_cast<std::int64_t>(d);
    const std::uint64_t zz = (static_cast<std::uint64_t>(sd) << 1) ^
                             static_cast<std::uint64_t>(sd >> 63);
    std::memcpy(bytes.data() + i * sizeof(v), &zz, sizeof(v));
  }
}

void DeltaDecode64(std::vector<std::byte>& bytes) {
  const std::size_t n = bytes.size() / sizeof(std::uint64_t);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t zz;
    std::memcpy(&zz, bytes.data() + i * sizeof(zz), sizeof(zz));
    const std::uint64_t d = (zz >> 1) ^ (~(zz & 1) + 1);
    acc += d;
    std::memcpy(bytes.data() + i * sizeof(zz), &acc, sizeof(zz));
  }
}

/// Stride-8 byte transpose over the whole-u64 prefix: plane p collects byte
/// p of every 8-byte word, so near-constant high-order planes become long
/// runs for the RLE stage.  The < 8-byte tail is carried verbatim.
std::vector<std::byte> Shuffle8(const std::vector<std::byte>& in) {
  std::vector<std::byte> out(in.size());
  const std::size_t words = in.size() / 8;
  for (std::size_t p = 0; p < 8; ++p) {
    for (std::size_t i = 0; i < words; ++i) {
      out[p * words + i] = in[i * 8 + p];
    }
  }
  std::memcpy(out.data() + words * 8, in.data() + words * 8,
              in.size() - words * 8);
  return out;
}

std::vector<std::byte> Unshuffle8(const std::vector<std::byte>& in) {
  std::vector<std::byte> out(in.size());
  const std::size_t words = in.size() / 8;
  for (std::size_t p = 0; p < 8; ++p) {
    for (std::size_t i = 0; i < words; ++i) {
      out[i * 8 + p] = in[p * words + i];
    }
  }
  std::memcpy(out.data() + words * 8, in.data() + words * 8,
              in.size() - words * 8);
  return out;
}

void RleEncode(const std::vector<std::byte>& src,
               std::vector<std::byte>& out) {
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    std::size_t run = 1;
    while (i + run < n && src[i + run] == src[i] && run < kMaxRun) ++run;
    if (run >= kMinRun) {
      out.push_back(static_cast<std::byte>(126 + run));
      out.push_back(src[i]);
      i += run;
      continue;
    }
    // Literal chunk: up to kMaxLiteral bytes, cut short where a run of
    // kMinRun begins.
    std::size_t k = i;
    while (k < n && k - i < kMaxLiteral) {
      if (k + kMinRun <= n && src[k] == src[k + 1] && src[k] == src[k + 2]) {
        break;
      }
      ++k;
    }
    out.push_back(static_cast<std::byte>(k - i - 1));
    out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(i),
               src.begin() + static_cast<std::ptrdiff_t>(k));
    i = k;
  }
}

std::vector<std::byte> RleDecode(std::span<const std::byte> wire,
                                 std::size_t pos, std::size_t expected) {
  std::vector<std::byte> out;
  out.reserve(expected);
  while (pos < wire.size()) {
    const auto control = static_cast<std::uint8_t>(wire[pos++]);
    if (control < 128) {
      const std::size_t literals = control + std::size_t{1};
      if (pos + literals > wire.size()) {
        throw std::runtime_error(
            "codec: truncated shuffle_rle stream inside a literal run");
      }
      if (out.size() + literals > expected) {
        throw std::runtime_error(
            "codec: shuffle_rle stream decodes past the declared raw size");
      }
      out.insert(out.end(), wire.begin() + static_cast<std::ptrdiff_t>(pos),
                 wire.begin() + static_cast<std::ptrdiff_t>(pos + literals));
      pos += literals;
    } else {
      const std::size_t run = control - std::size_t{126};
      if (pos >= wire.size()) {
        throw std::runtime_error(
            "codec: truncated shuffle_rle stream inside a repeat run");
      }
      if (out.size() + run > expected) {
        throw std::runtime_error(
            "codec: shuffle_rle stream decodes past the declared raw size");
      }
      out.insert(out.end(), run, wire[pos++]);
    }
  }
  if (out.size() != expected) {
    throw std::runtime_error(
        "codec: shuffle_rle stream decoded " + std::to_string(out.size()) +
        " bytes, expected " + std::to_string(expected));
  }
  return out;
}

std::vector<std::byte> EncodeShuffleRle(std::span<const std::byte> raw,
                                        bool delta) {
  std::vector<std::byte> work(raw.begin(), raw.end());
  const bool delta_applied = delta && !work.empty() && work.size() % 8 == 0;
  if (delta_applied) DeltaEncode64(work);
  const std::vector<std::byte> shuffled = Shuffle8(work);

  std::vector<std::byte> out;
  out.reserve(16 + raw.size() / 4);
  out.push_back(static_cast<std::byte>(kStreamVersion));
  out.push_back(static_cast<std::byte>(delta_applied ? kFlagDelta64 : 0));
  for (int i = 0; i < 6; ++i) out.push_back(std::byte{0});
  RleEncode(shuffled, out);
  if (out.size() - kShuffleRleHeaderBytes > raw.size()) {
    // Incompressible input: PackBits literals cost ~1/128 overhead, so
    // already-random planes would ship larger than raw.  Store the
    // original bytes verbatim instead — wire is then bounded by
    // raw + header for every input, and the compression-ratio gauges
    // never report expansion beyond the fixed header.
    out.resize(kShuffleRleHeaderBytes);
    out[1] = static_cast<std::byte>(kFlagRawStore);
    out.insert(out.end(), raw.begin(), raw.end());
    // Forensic breadcrumb: a stream that suddenly stops compressing (all
    // fallbacks, ratio ~1.0) is a data-distribution change worth seeing in
    // the crash tail, not just in the aggregate wire counters.
    instrument::RecordFlightEvent(instrument::FlightEventKind::kCodecFallback,
                                  "codec.shuffle_rle_raw", /*step=*/-1,
                                  static_cast<double>(raw.size()));
  }
  return out;
}

std::vector<std::byte> DecodeShuffleRle(std::span<const std::byte> wire,
                                        std::size_t raw_size) {
  std::size_t pos = 0;
  const auto version = ReadValue<std::uint8_t>(wire, pos, "version");
  if (version != kStreamVersion) {
    throw std::runtime_error(
        "codec: unsupported shuffle_rle stream version " +
        std::to_string(version));
  }
  const auto flags = ReadValue<std::uint8_t>(wire, pos, "flags");
  if ((flags & ~(kFlagDelta64 | kFlagRawStore)) != 0) {
    throw std::runtime_error("codec: unknown shuffle_rle stream flags " +
                             std::to_string(flags));
  }
  if ((flags & kFlagRawStore) != 0 && (flags & kFlagDelta64) != 0) {
    throw std::runtime_error(
        "codec: shuffle_rle raw-store stream also carries the delta flag");
  }
  for (int i = 0; i < 6; ++i) ReadValue<std::uint8_t>(wire, pos, "reserved");
  if ((flags & kFlagRawStore) != 0) {
    if (wire.size() - pos != raw_size) {
      throw std::runtime_error(
          "codec: shuffle_rle raw-store payload holds " +
          std::to_string(wire.size() - pos) + " byte(s), expected " +
          std::to_string(raw_size));
    }
    return std::vector<std::byte>(wire.begin() + static_cast<std::ptrdiff_t>(pos),
                                  wire.end());
  }
  std::vector<std::byte> out = Unshuffle8(RleDecode(wire, pos, raw_size));
  if ((flags & kFlagDelta64) != 0) {
    if (out.size() % 8 != 0) {
      throw std::runtime_error(
          "codec: shuffle_rle delta flag on a non-multiple-of-8 payload");
    }
    DeltaDecode64(out);
  }
  return out;
}

/// Largest raw size any well-formed stream of `wire_size` bytes can decode
/// to, used to sanity-bound the untrusted raw-length header field BEFORE
/// it becomes an allocation size.  Blockfloat: 16-byte header plus at
/// least one mode byte per 64-value (512-byte) block.  shuffle_rle: 8-byte
/// header plus RLE where a 2-byte repeat token expands to at most 129
/// bytes (~64.5x per wire byte; 65 also covers a raw-store payload, which
/// expands 1x).
std::size_t MaxPlausibleRawSize(Kind kind, std::size_t wire_size) {
  if (kind == Kind::kBlockFloat) {
    if (wire_size <= kBlockFloatHeaderBytes) return 0;
    return (wire_size - kBlockFloatHeaderBytes) * kBlockFloatBlock *
           sizeof(double);
  }
  if (wire_size <= kShuffleRleHeaderBytes) return 0;
  return (wire_size - kShuffleRleHeaderBytes) * 65;
}

}  // namespace

bool KnownKind(std::uint64_t kind) {
  return kind == static_cast<std::uint64_t>(Kind::kIdentity) ||
         kind == static_cast<std::uint64_t>(Kind::kShuffleRle) ||
         kind == static_cast<std::uint64_t>(Kind::kBlockFloat);
}

std::string KindName(Kind kind) {
  switch (kind) {
    case Kind::kIdentity: return "identity";
    case Kind::kShuffleRle: return "shuffle_rle";
    case Kind::kBlockFloat: return "blockfloat";
  }
  return "unknown";
}

core::Buffer Encode(const Spec& spec, std::span<const std::byte> raw) {
  if (spec.Identity()) {
    return core::Buffer::CopyOf("marshal", raw);
  }
  instrument::Span span("codec.encode");
  std::vector<std::byte> wire = spec.kind == Kind::kBlockFloat
                                    ? EncodeBlockFloat(raw, spec.rate)
                                    : EncodeShuffleRle(raw, spec.delta);
  if (auto* metrics = instrument::CurrentMetrics()) {
    metrics->Add("codec.encode_bytes", static_cast<double>(raw.size()));
  }
  return core::Buffer::TakeVector("marshal", std::move(wire));
}

core::Buffer Decode(Kind kind, std::span<const std::byte> wire,
                    std::size_t raw_size) {
  if (kind == Kind::kIdentity) {
    if (wire.size() != raw_size) {
      throw std::runtime_error(
          "codec: identity payload of " + std::to_string(wire.size()) +
          " bytes does not match its declared raw size " +
          std::to_string(raw_size));
    }
    return core::Buffer::CopyOf("marshal", wire);
  }
  instrument::Span span("codec.decode");
  if (raw_size > MaxPlausibleRawSize(kind, wire.size())) {
    throw std::runtime_error(
        "codec: declared raw size " + std::to_string(raw_size) +
        " byte(s) exceeds the " + std::to_string(
            MaxPlausibleRawSize(kind, wire.size())) +
        " a " + KindName(kind) + " stream of " + std::to_string(wire.size()) +
        " byte(s) can decode to — corrupt length field");
  }
  std::vector<std::byte> raw = kind == Kind::kBlockFloat
                                   ? DecodeBlockFloat(wire, raw_size)
                                   : DecodeShuffleRle(wire, raw_size);
  if (auto* metrics = instrument::CurrentMetrics()) {
    metrics->Add("codec.decode_bytes", static_cast<double>(raw.size()));
  }
  return core::Buffer::TakeVector("marshal", std::move(raw));
}

double BlockFloatErrorBound(std::span<const double> values, int rate) {
  CheckBlockFloatArgs(values.size_bytes(), rate);
  double bound = 0.0;
  for (std::size_t begin = 0; begin < values.size();
       begin += kBlockFloatBlock) {
    const std::size_t n = std::min(kBlockFloatBlock, values.size() - begin);
    bool finite = true;
    double scale = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(values[begin + i])) {
        finite = false;
        break;
      }
      scale = std::max(scale, std::fabs(values[begin + i]));
    }
    if (!finite) continue;  // verbatim block: error 0
    bound = std::max(bound, scale * std::ldexp(1.0, 1 - rate));
  }
  return bound;
}

}  // namespace codec
