// Pluggable compression codec plane for the transport boundary.
//
// Every byte that leaves a rank — the SST stream, the BP file engine, the
// checkpoint-over-BP plane — is framed per variable by adios::MarshalChain,
// and each variable may be run through one of the codecs here (the role
// zfp/SZ play behind ADIOS2's SST in the paper's workflow, scaled to this
// reproduction).  Two concrete codecs plus the identity:
//
//   kIdentity    bytes pass through untouched (the zero-copy path; the
//                marshal layer never calls into this module for it).
//   kShuffleRle  lossless byte shuffle + run-length coding: a wrap-around
//                int64 delta (optional), a stride-8 byte transpose that
//                groups the high-order byte planes (near-constant for
//                connectivity and smooth fields), then PackBits-style RLE.
//                Round-trips arbitrary bytes exactly, including NaN/Inf
//                payloads and non-multiple-of-8 sizes.  Incompressible
//                input falls back to a verbatim raw-store frame, so the
//                wire size never exceeds raw + 8 header bytes.
//   kBlockFloat  fixed-rate lossy coding of f64 arrays: per 64-value block,
//                values are quantized to `rate` bits against the block's
//                max-abs scale.  Documented, testable error bound below.
//
// Ownership rule at the encode boundary: Encode reads a borrowed view of
// the staged bytes and returns a freshly allocated buffer the caller owns;
// the input is never aliased by the output, so staged data-plane buffers
// keep their zero-copy lifetime rules.  Decode likewise returns an owned
// buffer of exactly `raw_size` bytes or throws — it never returns partial
// output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "core/buffer.hpp"

namespace codec {

/// Wire identifier of a codec, carried per variable in the BP-like header
/// (adios::MarshalChain).  Values are part of the wire format: never
/// renumber.
enum class Kind : std::uint32_t {
  kIdentity = 0,
  kShuffleRle = 1,
  kBlockFloat = 2,
};

/// True when `kind` is a Kind this build can decode.
[[nodiscard]] bool KnownKind(std::uint64_t kind);

/// Human-readable codec name ("identity", "shuffle_rle", "blockfloat").
[[nodiscard]] std::string KindName(Kind kind);

/// Values per blockfloat quantization block.  Each block carries its own
/// scale, so a rank decomposition aligned to this granularity encodes to
/// identical bytes regardless of how the blocks are partitioned.
inline constexpr std::size_t kBlockFloatBlock = 64;

/// Blockfloat rate limits (bits per value, sign included).
inline constexpr int kMinBlockFloatRate = 2;
inline constexpr int kMaxBlockFloatRate = 32;

/// Per-variable codec selection (parsed from the SENSEI XML's <codec>
/// elements).  `rate` applies to kBlockFloat, `delta` to kShuffleRle.
struct Spec {
  Kind kind = Kind::kIdentity;
  int rate = 8;
  bool delta = false;

  [[nodiscard]] bool Identity() const { return kind == Kind::kIdentity; }
};

/// Encode `raw` under `spec` into a freshly allocated buffer (tracker
/// category "marshal").  kBlockFloat requires raw.size() % 8 == 0 (whole
/// f64 values) and rate in [kMinBlockFloatRate, kMaxBlockFloatRate];
/// violations throw std::invalid_argument.  The encoded stream is
/// self-describing (rate / applied transforms live in its header), so
/// decoding needs only the Kind.
[[nodiscard]] core::Buffer Encode(const Spec& spec,
                                  std::span<const std::byte> raw);

/// Inverse of Encode: decode `wire` into exactly `raw_size` bytes.  Every
/// read is bounds-checked; truncated, oversized, or internally inconsistent
/// streams throw std::runtime_error with a descriptive message.  The
/// untrusted `raw_size` is capped against the codec's maximum expansion of
/// `wire.size()` before any allocation, so a corrupt length field throws a
/// named error instead of triggering a huge allocation.
[[nodiscard]] core::Buffer Decode(Kind kind, std::span<const std::byte> wire,
                                  std::size_t raw_size);

/// The documented kBlockFloat error bound: for every 64-value block B,
///
///   max |v - decode(encode(v))|  <=  max_abs(B) * 2^(1 - rate)
///    v in B
///
/// (quantization against the block max-abs scale m with Q = 2^(rate-1) - 1
/// levels has max error 0.5 * m / Q, which is <= m * 2^(1-rate) for every
/// rate >= 2).  Blocks containing non-finite values are stored verbatim
/// (NaN/Inf passthrough: bit-exact, error 0); all-zero blocks decode to
/// exact zeros.  This helper evaluates the bound for a concrete array so
/// tests can assert it value-by-value.
[[nodiscard]] double BlockFloatErrorBound(std::span<const double> values,
                                          int rate);

}  // namespace codec
