// Autocorrelation AnalysisAdaptor — SENSEI's canonical demo analysis
// (sensei::Autocorrelation): the temporal autocorrelation of a field over a
// sliding window of snapshots, reduced across ranks.
//
// Unlike stats/histogram this analysis is *stateful across triggers*: it
// must keep `window` past snapshots of the field on the host, so its memory
// footprint scales with window x field size — a qualitatively different in
// situ cost point that the memory tracker makes visible.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "instrument/memory_tracker.hpp"
#include "sensei/data_adaptor.hpp"

namespace sensei {

struct AutocorrelationOptions {
  std::string array = "velocity";
  svtk::Centering centering = svtk::Centering::kPoint;
  bool by_magnitude = true;  ///< reduce vectors to |v| before correlating
  int window = 8;            ///< snapshots kept
  int max_lag = 4;           ///< lags computed (< window)
  std::string output_dir;    ///< empty = keep in memory only
};

class AutocorrelationAnalysisAdaptor final : public AnalysisAdaptor {
 public:
  explicit AutocorrelationAnalysisAdaptor(AutocorrelationOptions options);

  bool Execute(DataAdaptor& data) override;
  [[nodiscard]] std::vector<std::string> RequestedArrays() const override {
    return {options_.array};
  }
  [[nodiscard]] std::string Kind() const override {
    return "autocorrelation";
  }
  [[nodiscard]] std::size_t BytesWritten() const override {
    return bytes_written_;
  }

  /// Domain-averaged autocorrelation per lag (valid on every rank once the
  /// window has filled; empty before that).
  [[nodiscard]] const std::vector<double>& Correlations() const {
    return correlations_;
  }
  [[nodiscard]] int SnapshotsHeld() const {
    return static_cast<int>(history_.size());
  }

 private:
  AutocorrelationOptions options_;
  /// Sliding window of host snapshots (tracked: the stateful in situ cost).
  std::deque<instrument::TrackedBuffer<double>> history_;
  std::vector<double> correlations_;
  std::size_t bytes_written_ = 0;
};

}  // namespace sensei
