#include "sensei/stats_adaptor.hpp"

#include <fstream>
#include <sstream>

namespace sensei {

bool StatsAnalysisAdaptor::Execute(DataAdaptor& data) {
  mpimini::Comm& comm = data.GetCommunicator();
  MeshMetadata metadata = data.GetMeshMetadata(0);
  std::shared_ptr<svtk::UnstructuredGrid> mesh = data.GetMesh(0);
  if (!mesh) return false;

  std::vector<std::string> names = options_.arrays;
  if (names.empty()) {
    for (const ArrayMetadata& a : metadata.arrays) names.push_back(a.name);
  }

  last_.clear();
  for (const std::string& name : names) {
    svtk::Centering centering = svtk::Centering::kPoint;
    for (const ArrayMetadata& a : metadata.arrays) {
      if (a.name == name) centering = a.centering;
    }
    if (!mesh->PointArray(name) && !mesh->CellArray(name)) {
      if (!data.AddArray(*mesh, name, centering)) return false;
    }
    const svtk::DataArray* array = centering == svtk::Centering::kPoint
                                       ? mesh->PointArray(name)
                                       : mesh->CellArray(name);
    double local_min = 0.0, local_max = 0.0, local_sum = 0.0;
    double local_count = static_cast<double>(array->Values());
    auto values = array->Data();
    if (!values.empty()) {
      local_min = local_max = values[0];
      for (double v : values) {
        local_min = std::min(local_min, v);
        local_max = std::max(local_max, v);
        local_sum += v;
      }
    }
    ArrayStats stats;
    stats.min = comm.AllReduceValue(local_min, mpimini::Op::kMin);
    stats.max = comm.AllReduceValue(local_max, mpimini::Op::kMax);
    const double sum = comm.AllReduceValue(local_sum, mpimini::Op::kSum);
    const double count = comm.AllReduceValue(local_count, mpimini::Op::kSum);
    stats.mean = count > 0.0 ? sum / count : 0.0;
    last_[name] = stats;
  }

  if (!options_.log_path.empty() && comm.Rank() == 0) {
    std::ostringstream line;
    line << "step " << data.GetDataTimeStep() << " time "
         << data.GetDataTime();
    for (const auto& [name, s] : last_) {
      line << " | " << name << " min " << s.min << " max " << s.max
           << " mean " << s.mean;
    }
    line << '\n';
    std::ofstream out(options_.log_path, std::ios::app);
    out << line.str();
    bytes_written_ += line.str().size();
  }
  return true;
}

}  // namespace sensei
