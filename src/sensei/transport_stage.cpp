#include "sensei/transport_stage.hpp"

#include <cstring>
#include <stdexcept>

#include "svtk/serialize.hpp"

namespace sensei {

namespace {

/// Leading magic of a split-staged skeleton.  Distinct from the legacy
/// single-blob grid magic (svtk/serialize.cpp), which ReassembleGrid keys
/// its fallback on.
constexpr std::uint64_t kGridSkeletonMagic = 0x53564B534B454CULL;  // "SVKSKEL"

core::BufferChain ViewChain(const core::Buffer& storage) {
  return core::BufferChain(core::BufferView(storage));
}

const core::Buffer& RequireVariable(const adios::StepPayload& payload,
                                    const std::string& name) {
  const auto it = payload.variables.find(name);
  if (it == payload.variables.end()) {
    throw std::runtime_error("sensei: staged payload missing variable '" +
                             name + "'");
  }
  return it->second;
}

void CopyPlane(const adios::StepPayload& payload, const std::string& name,
               std::span<double> dst) {
  const core::Buffer& src = RequireVariable(payload, name);
  if (src.size() != dst.size_bytes()) {
    throw std::runtime_error(
        "sensei: staged variable '" + name + "' holds " +
        std::to_string(src.size()) + " byte(s), expected " +
        std::to_string(dst.size_bytes()));
  }
  std::memcpy(dst.data(), src.data(), src.size());
}

}  // namespace

codec::Spec TransportCodecs::ForArray(const std::string& name) const {
  auto it = arrays.find(name);
  if (it == arrays.end()) it = arrays.find("*");
  return it == arrays.end() ? codec::Spec{} : it->second;
}

bool TransportCodecs::Any() const {
  if (!points.Identity() || !connectivity.Identity()) return true;
  for (const auto& [name, spec] : arrays) {
    if (!spec.Identity()) return true;
  }
  return false;
}

void StageGridTo(const StagePut& put, const svtk::UnstructuredGrid& grid,
                 const TransportCodecs& codecs) {
  if (codecs.connectivity.kind == codec::Kind::kBlockFloat) {
    throw std::invalid_argument(
        "sensei: blockfloat codec cannot apply to the int64 connectivity "
        "plane (use shuffle_rle)");
  }
  svtk::ByteWriter skeleton;
  skeleton.U64(kGridSkeletonMagic);
  skeleton.U64(grid.NumPoints());
  skeleton.U64(grid.NumCells());
  const std::vector<std::string> point_names = grid.PointArrayNames();
  const std::vector<std::string> cell_names = grid.CellArrayNames();
  skeleton.U64(point_names.size());
  for (const std::string& name : point_names) {
    skeleton.Str(name);
    skeleton.I32(grid.PointArray(name)->Components());
  }
  skeleton.U64(cell_names.size());
  for (const std::string& name : cell_names) {
    skeleton.Str(name);
    skeleton.I32(grid.CellArray(name)->Components());
  }
  put("mesh",
      core::BufferChain(core::BufferView(
          core::Buffer::TakeVector("serialize", skeleton.Take()))),
      codec::Spec{});

  put("mesh.points", ViewChain(grid.PointsStorage()), codecs.points);
  put("mesh.conn", ViewChain(grid.ConnectivityStorage()),
      codecs.connectivity);
  for (const std::string& name : point_names) {
    put("mesh.pa." + name, ViewChain(grid.PointArray(name)->Storage()),
        codecs.ForArray(name));
  }
  for (const std::string& name : cell_names) {
    put("mesh.ca." + name, ViewChain(grid.CellArray(name)->Storage()),
        codecs.ForArray(name));
  }
}

svtk::UnstructuredGrid ReassembleGrid(const adios::StepPayload& payload) {
  const core::Buffer& mesh_var = RequireVariable(payload, "mesh");
  if (mesh_var.size() >= sizeof(std::uint64_t)) {
    std::uint64_t magic = 0;
    std::memcpy(&magic, mesh_var.data(), sizeof(magic));
    if (magic != kGridSkeletonMagic) {
      // Legacy single-blob payload (old writers, restart files): the whole
      // grid lives in "mesh" and svtk::Deserialize validates its own magic.
      return svtk::Deserialize(mesh_var.bytes());
    }
  } else {
    throw std::runtime_error(
        "sensei: staged variable 'mesh' too small to hold a grid skeleton");
  }

  svtk::ByteReader r(mesh_var.bytes());
  (void)r.U64();  // magic, already checked
  const std::uint64_t np = r.U64();
  const std::uint64_t nc = r.U64();
  svtk::UnstructuredGrid grid(np, nc);

  // Bulk planes land in grid-owned storage: the payload buffers may be
  // slices of the transport message (identity) or freshly decoded blocks
  // with no alignment guarantee, so the copy is the safe landing either
  // way.
  CopyPlane(payload, "mesh.points", grid.Points());
  const core::Buffer& conn = RequireVariable(payload, "mesh.conn");
  if (conn.size() != grid.Connectivity().size_bytes()) {
    throw std::runtime_error(
        "sensei: staged variable 'mesh.conn' holds " +
        std::to_string(conn.size()) + " byte(s), expected " +
        std::to_string(grid.Connectivity().size_bytes()));
  }
  std::memcpy(grid.Connectivity().data(), conn.data(), conn.size());

  auto read_arrays = [&](bool point_data) {
    const std::uint64_t count = r.U64();
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::string name = r.Str();
      const int comps = r.I32();
      svtk::DataArray& target = point_data
                                   ? grid.AddPointArray(name, comps)
                                   : grid.AddCellArray(name, comps);
      CopyPlane(payload, (point_data ? "mesh.pa." : "mesh.ca.") + name,
                target.Data());
    }
  };
  read_arrays(/*point_data=*/true);
  read_arrays(/*point_data=*/false);
  if (!r.AtEnd()) {
    throw std::runtime_error(
        "sensei: grid skeleton has " + std::to_string(r.Remaining()) +
        " trailing byte(s)");
  }
  return grid;
}

}  // namespace sensei
