#include "sensei/intransit_data_adaptor.hpp"

#include <cstring>
#include <stdexcept>

#include "sensei/transport_stage.hpp"

namespace sensei {

std::shared_ptr<svtk::UnstructuredGrid> MergeBlocks(
    const std::vector<std::shared_ptr<svtk::UnstructuredGrid>>& blocks) {
  std::size_t npoints = 0;
  std::size_t ncells = 0;
  for (const auto& block : blocks) {
    npoints += block->NumPoints();
    ncells += block->NumCells();
  }
  auto merged = std::make_shared<svtk::UnstructuredGrid>(npoints, ncells);

  // Arrays present in every block survive the merge.
  std::vector<std::pair<std::string, bool>> arrays;  // (name, is_point)
  if (!blocks.empty()) {
    for (const std::string& name : blocks[0]->PointArrayNames()) {
      bool everywhere = true;
      for (const auto& block : blocks) {
        everywhere = everywhere && block->PointArray(name) != nullptr;
      }
      if (everywhere) arrays.push_back({name, true});
    }
    for (const std::string& name : blocks[0]->CellArrayNames()) {
      bool everywhere = true;
      for (const auto& block : blocks) {
        everywhere = everywhere && block->CellArray(name) != nullptr;
      }
      if (everywhere) arrays.push_back({name, false});
    }
    for (const auto& [name, is_point] : arrays) {
      const svtk::DataArray* ref = is_point ? blocks[0]->PointArray(name)
                                           : blocks[0]->CellArray(name);
      if (is_point) {
        merged->AddPointArray(name, ref->Components());
      } else {
        merged->AddCellArray(name, ref->Components());
      }
    }
  }

  std::size_t point_base = 0;
  std::size_t cell_base = 0;
  for (const auto& block : blocks) {
    std::memcpy(merged->Points().data() + 3 * point_base,
                block->Points().data(),
                block->Points().size() * sizeof(double));
    for (std::size_t c = 0; c < block->NumCells(); ++c) {
      auto cell = block->GetCell(c);
      for (auto& node : cell) node += static_cast<std::int64_t>(point_base);
      merged->SetCell(cell_base + c, cell);
    }
    for (const auto& [name, is_point] : arrays) {
      const svtk::DataArray* src = is_point ? block->PointArray(name)
                                           : block->CellArray(name);
      svtk::DataArray* dst = is_point ? merged->PointArray(name)
                                      : merged->CellArray(name);
      const std::size_t base = is_point ? point_base : cell_base;
      std::memcpy(dst->Data().data() +
                      base * static_cast<std::size_t>(dst->Components()),
                  src->Data().data(), src->Data().size() * sizeof(double));
    }
    point_base += block->NumPoints();
    cell_base += block->NumCells();
  }
  return merged;
}

void InTransitDataAdaptor::SetStep(
    int step, double time,
    const std::map<int, adios::StepPayload>& payloads) {
  blocks_.clear();
  merged_.reset();
  double data_time = time;
  for (const auto& [writer, payload] : payloads) {
    blocks_.push_back(std::make_shared<svtk::UnstructuredGrid>(
        ReassembleGrid(payload)));
    auto t = payload.variables.find("time");
    if (t != payload.variables.end() && t->second.size() == sizeof(double)) {
      std::memcpy(&data_time, t->second.data(), sizeof(double));
    }
  }
  SetPipelineTime(step, data_time);
}

MeshMetadata InTransitDataAdaptor::GetMeshMetadata(int) {
  MeshMetadata metadata;
  metadata.mesh_name = "mesh";
  metadata.num_blocks = GetCommunicator().Size();

  std::shared_ptr<svtk::UnstructuredGrid> mesh = GetMesh(0);
  std::array<double, 6> bounds = mesh->Bounds();
  mpimini::Comm& comm = GetCommunicator();
  for (int d = 0; d < 3; ++d) {
    bounds[static_cast<std::size_t>(2 * d)] = comm.AllReduceValue(
        bounds[static_cast<std::size_t>(2 * d)], mpimini::Op::kMin);
    bounds[static_cast<std::size_t>(2 * d + 1)] = comm.AllReduceValue(
        bounds[static_cast<std::size_t>(2 * d + 1)], mpimini::Op::kMax);
  }
  metadata.global_bounds = bounds;

  for (const std::string& name : mesh->PointArrayNames()) {
    metadata.arrays.push_back(
        {name, svtk::Centering::kPoint, mesh->PointArray(name)->Components()});
  }
  for (const std::string& name : mesh->CellArrayNames()) {
    metadata.arrays.push_back(
        {name, svtk::Centering::kCell, mesh->CellArray(name)->Components()});
  }
  return metadata;
}

std::shared_ptr<svtk::UnstructuredGrid> InTransitDataAdaptor::GetMesh(int) {
  if (!merged_) {
    if (blocks_.empty()) {
      throw std::runtime_error("sensei: no in transit step installed");
    }
    merged_ = MergeBlocks(blocks_);
  }
  return merged_;
}

bool InTransitDataAdaptor::AddArray(svtk::UnstructuredGrid&,
                                    const std::string& name,
                                    svtk::Centering centering) {
  // Every array arrived with the stream; it is either already on the merged
  // mesh or unknown.
  std::shared_ptr<svtk::UnstructuredGrid> mesh = GetMesh(0);
  return centering == svtk::Centering::kPoint
             ? mesh->PointArray(name) != nullptr
             : mesh->CellArray(name) != nullptr;
}

void InTransitDataAdaptor::ReleaseData() {
  blocks_.clear();
  merged_.reset();
}

}  // namespace sensei
