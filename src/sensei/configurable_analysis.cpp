#include "sensei/configurable_analysis.hpp"

#include <cstdlib>
#include <stdexcept>

#include "sensei/catalyst_adaptor.hpp"
#include "sensei/autocorrelation_adaptor.hpp"
#include "sensei/bpfile_adaptor.hpp"
#include "sensei/checkpoint_adaptor.hpp"
#include "sensei/histogram_adaptor.hpp"
#include "sensei/stats_adaptor.hpp"

namespace sensei {

namespace {

svtk::Centering ParseCentering(const std::string& text) {
  if (text == "cell") return svtk::Centering::kCell;
  if (text == "point" || text.empty()) return svtk::Centering::kPoint;
  throw std::invalid_argument("sensei: unknown centering '" + text + "'");
}

CatalystView ParseView(const xmlcfg::Element& e) {
  CatalystView view;
  view.array = e.Attr("array", view.array);
  view.centering = ParseCentering(e.Attr("centering"));
  view.color_by_magnitude = e.AttrInt("magnitude", 0) != 0;
  view.colormap = e.Attr("colormap", view.colormap);
  view.azimuth = e.AttrDouble("azimuth", view.azimuth);
  view.elevation = e.AttrDouble("elevation", view.elevation);
  view.zoom = e.AttrDouble("zoom", view.zoom);
  view.range_min = e.AttrDouble("min", 0.0);
  view.range_max = e.AttrDouble("max", 0.0);
  if (e.HasAttr("threshold_min")) {
    view.threshold_min = e.AttrDouble("threshold_min");
  }
  if (e.HasAttr("threshold_max")) {
    view.threshold_max = e.AttrDouble("threshold_max");
  }
  if (e.HasAttr("isovalue")) {
    view.isovalue = e.AttrDouble("isovalue");
    view.iso_array = e.Attr("iso_array");
  }
  if (e.HasAttr("slice_axis")) {
    const std::string axis = e.Attr("slice_axis");
    if (axis == "x" || axis == "0") view.slice_axis = 0;
    else if (axis == "y" || axis == "1") view.slice_axis = 1;
    else if (axis == "z" || axis == "2") view.slice_axis = 2;
    else throw std::invalid_argument("sensei: bad slice_axis '" + axis + "'");
    view.slice_position = e.AttrDouble("slice_position", 0.0);
  }
  view.name = e.Attr("name", view.array);
  return view;
}

std::shared_ptr<AnalysisAdaptor> MakeCatalyst(const xmlcfg::Element& e,
                                              mpimini::Comm&) {
  CatalystOptions options;
  options.width = static_cast<int>(e.AttrInt("width", 640));
  options.height = static_cast<int>(e.AttrInt("height", 480));
  options.output_dir = e.Attr("output", ".");
  options.prefix = e.Attr("prefix", "render");
  options.format = e.Attr("format", "png");
  options.scalar_bar = e.AttrInt("scalar_bar", 1) != 0;
  for (const xmlcfg::Element* view : e.FindAll("render")) {
    options.views.push_back(ParseView(*view));
  }
  if (options.views.empty() && e.HasAttr("array")) {
    options.views.push_back(ParseView(e));
  }
  if (options.views.empty()) {
    throw std::invalid_argument(
        "sensei: catalyst analysis needs <render> children or an array "
        "attribute");
  }
  return std::make_shared<CatalystAnalysisAdaptor>(std::move(options));
}

std::shared_ptr<AnalysisAdaptor> MakeCheckpoint(const xmlcfg::Element& e,
                                                mpimini::Comm&) {
  CheckpointOptions options;
  options.output_dir = e.Attr("output", ".");
  options.prefix = e.Attr("prefix", "chk");
  options.encoding = e.Attr("encoding", "binary") == "ascii"
                         ? svtk::VtuEncoding::kAscii
                         : svtk::VtuEncoding::kBinary;
  options.arrays = SplitList(e.Attr("arrays"));
  return std::make_shared<CheckpointAnalysisAdaptor>(std::move(options));
}

std::shared_ptr<AnalysisAdaptor> MakeAutocorrelation(const xmlcfg::Element& e,
                                                     mpimini::Comm&) {
  AutocorrelationOptions options;
  options.array = e.Attr("array", options.array);
  options.centering = ParseCentering(e.Attr("centering"));
  options.by_magnitude = e.AttrInt("magnitude", 1) != 0;
  options.window = static_cast<int>(e.AttrInt("window", options.window));
  options.max_lag = static_cast<int>(e.AttrInt("max_lag", options.max_lag));
  options.output_dir = e.Attr("output");
  return std::make_shared<AutocorrelationAnalysisAdaptor>(std::move(options));
}

std::shared_ptr<AnalysisAdaptor> MakeBpFile(const xmlcfg::Element& e,
                                            mpimini::Comm&) {
  BpFileOptions options;
  options.output_dir = e.Attr("output", ".");
  options.prefix = e.Attr("prefix", "stream");
  options.arrays = SplitList(e.Attr("arrays"));
  options.codecs = ParseTransportCodecs(e);
  return std::make_shared<BpFileAnalysisAdaptor>(std::move(options));
}

std::shared_ptr<AnalysisAdaptor> MakeStats(const xmlcfg::Element& e,
                                           mpimini::Comm&) {
  StatsOptions options;
  options.arrays = SplitList(e.Attr("arrays"));
  options.log_path = e.Attr("log");
  return std::make_shared<StatsAnalysisAdaptor>(std::move(options));
}

std::shared_ptr<AnalysisAdaptor> MakeHistogram(const xmlcfg::Element& e,
                                               mpimini::Comm&) {
  HistogramOptions options;
  options.array = e.Attr("array", options.array);
  options.centering = ParseCentering(e.Attr("centering"));
  options.by_magnitude = e.AttrInt("magnitude", 0) != 0;
  options.bins = static_cast<int>(e.AttrInt("bins", options.bins));
  options.output_dir = e.Attr("output");
  return std::make_shared<HistogramAnalysisAdaptor>(std::move(options));
}

}  // namespace

codec::Spec ParseCodecSpec(const xmlcfg::Element& parent) {
  const xmlcfg::Element* e = parent.FindChild("codec");
  if (e == nullptr) return {};
  codec::Spec spec;
  const std::string type = e->Attr("type", "identity");
  if (type == "identity") {
    spec.kind = codec::Kind::kIdentity;
  } else if (type == "blockfloat") {
    spec.kind = codec::Kind::kBlockFloat;
  } else if (type == "shuffle_rle") {
    spec.kind = codec::Kind::kShuffleRle;
  } else {
    throw std::invalid_argument(
        "sensei: unknown codec type '" + type +
        "' (expected identity, blockfloat, or shuffle_rle)");
  }
  const long rate = e->AttrInt("rate", spec.rate);
  if (rate < codec::kMinBlockFloatRate || rate > codec::kMaxBlockFloatRate) {
    throw std::invalid_argument(
        "sensei: codec rate " + std::to_string(rate) + " outside [" +
        std::to_string(codec::kMinBlockFloatRate) + ", " +
        std::to_string(codec::kMaxBlockFloatRate) + "]");
  }
  spec.rate = static_cast<int>(rate);
  spec.delta = e->AttrInt("delta", spec.delta ? 1 : 0) != 0;
  return spec;
}

TransportCodecs ParseTransportCodecs(const xmlcfg::Element& analysis) {
  TransportCodecs codecs;
  if (const xmlcfg::Element* points = analysis.FindChild("points")) {
    codecs.points = ParseCodecSpec(*points);
  }
  if (const xmlcfg::Element* conn = analysis.FindChild("connectivity")) {
    codecs.connectivity = ParseCodecSpec(*conn);
  }
  if (codecs.connectivity.kind == codec::Kind::kBlockFloat) {
    // Reject at configuration time, before the first staged step would.
    throw std::invalid_argument(
        "sensei: blockfloat codec cannot apply to the int64 connectivity "
        "plane (use shuffle_rle)");
  }
  for (const xmlcfg::Element* array : analysis.FindAll("array")) {
    const std::string name = array->Attr("name");
    if (name.empty()) {
      throw std::invalid_argument(
          "sensei: <array> codec element needs a name attribute "
          "(\"*\" selects every array)");
    }
    codecs.arrays[name] = ParseCodecSpec(*array);
  }
  return codecs;
}

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    std::size_t end = csv.find(',', begin);
    if (end == std::string::npos) end = csv.size();
    std::string item = csv.substr(begin, end - begin);
    // trim spaces
    while (!item.empty() && item.front() == ' ') item.erase(item.begin());
    while (!item.empty() && item.back() == ' ') item.pop_back();
    if (!item.empty()) out.push_back(std::move(item));
    begin = end + 1;
  }
  return out;
}

ConfigurableAnalysis::ConfigurableAnalysis(mpimini::Comm comm) : comm_(comm) {
  factories_["catalyst"] = MakeCatalyst;
  factories_["checkpoint"] = MakeCheckpoint;
  factories_["bpfile"] = MakeBpFile;
  factories_["autocorrelation"] = MakeAutocorrelation;
  factories_["stats"] = MakeStats;
  factories_["histogram"] = MakeHistogram;
}

void ConfigurableAnalysis::RegisterFactory(const std::string& type,
                                           Factory factory) {
  factories_[type] = std::move(factory);
}

void ConfigurableAnalysis::Initialize(const xmlcfg::Element& root) {
  if (root.name != "sensei") {
    throw std::invalid_argument("sensei: configuration root must be <sensei>");
  }
  for (const xmlcfg::Element* analysis : root.FindAll("analysis")) {
    if (analysis->AttrInt("enabled", 1) == 0) continue;
    const std::string type = analysis->Attr("type");
    auto factory = factories_.find(type);
    if (factory == factories_.end()) {
      throw std::invalid_argument("sensei: unknown analysis type '" + type +
                                  "'");
    }
    Entry entry;
    entry.type = type;
    entry.frequency = static_cast<int>(analysis->AttrInt("frequency", 1));
    if (entry.frequency < 1) {
      throw std::invalid_argument("sensei: frequency must be >= 1");
    }
    entry.adaptor = factory->second(*analysis, comm_);
    entry.span_name = "analysis." + type;
    entries_.push_back(std::move(entry));
  }
}

instrument::TelemetryConfig ParseTelemetryConfig(const xmlcfg::Element& root) {
  instrument::TelemetryConfig config;
  if (root.name != "sensei") {
    throw std::invalid_argument("sensei: configuration root must be <sensei>");
  }
  const xmlcfg::Element* telemetry = root.FindChild("telemetry");
  if (telemetry == nullptr) return config;
  config.enabled = telemetry->AttrInt("enabled", 1) != 0;
  config.trace_path = telemetry->Attr("trace");
  config.summary_path = telemetry->Attr("summary");
  const long capacity = telemetry->AttrInt(
      "capacity", static_cast<long>(config.span_capacity));
  if (capacity < 1) {
    throw std::invalid_argument("sensei: telemetry capacity must be >= 1");
  }
  config.span_capacity = static_cast<std::size_t>(capacity);
  config.wait_min_seconds =
      telemetry->AttrDouble("wait_min_seconds", config.wait_min_seconds);
  // Metrics plane: metrics="path" requests the rank-aggregated
  // metrics.json; heartbeat="N" the rank-0 progress line every N steps.
  config.metrics_path = telemetry->Attr("metrics");
  config.metrics = !config.metrics_path.empty();
  const long heartbeat = telemetry->AttrInt("heartbeat", 0);
  if (heartbeat < 0) {
    throw std::invalid_argument("sensei: telemetry heartbeat must be >= 0");
  }
  config.heartbeat_steps = static_cast<int>(heartbeat);
  // Live monitor: monitor="PORT" serves /metrics, /healthz, and /status on
  // rank 0's loopback for the duration of the run (0 = ephemeral port);
  // status="path" persists the final /status JSON, port_file="path" writes
  // the bound port (how scripts find an ephemeral one).
  if (!telemetry->Attr("monitor").empty()) {
    const long port = telemetry->AttrInt("monitor", 0);
    if (port < 0 || port > 65535) {
      throw std::invalid_argument(
          "sensei: telemetry monitor port must be in [0, 65535]");
    }
    config.monitor_port = static_cast<int>(port);
  }
  config.status_path = telemetry->Attr("status");
  config.monitor_port_file = telemetry->Attr("port_file");
  return config;
}

void ConfigurableAnalysis::InitializeFromFile(const std::string& path) {
  Initialize(xmlcfg::ParseFile(path).root);
}

bool ConfigurableAnalysis::Execute(DataAdaptor& data) {
  bool ok = true;
  bool ran = false;
  for (Entry& entry : entries_) {
    if (data.GetDataTimeStep() % entry.frequency != 0) continue;
    instrument::Span span(entry.span_name);
    ok = entry.adaptor->Execute(data) && ok;
    ran = true;
  }
  if (ran) {
    instrument::Span span("analysis.release");
    data.ReleaseData();
  }
  return ok;
}

void ConfigurableAnalysis::Finalize() {
  for (Entry& entry : entries_) entry.adaptor->Finalize();
}

bool ConfigurableAnalysis::AnyDue(int step) const {
  for (const Entry& entry : entries_) {
    if (step % entry.frequency == 0) return true;
  }
  return false;
}

std::optional<std::vector<std::string>> ConfigurableAnalysis::RequiredArrays(
    int step) const {
  std::vector<std::string> names;
  for (const Entry& entry : entries_) {
    if (step % entry.frequency != 0) continue;
    std::vector<std::string> requested = entry.adaptor->RequestedArrays();
    if (requested.empty()) return std::nullopt;  // "every advertised array"
    for (std::string& name : requested) {
      bool have = false;
      for (const std::string& existing : names) {
        if (existing == name) {
          have = true;
          break;
        }
      }
      if (!have) names.push_back(std::move(name));
    }
  }
  return names;
}

PipelineConfig ParsePipelineConfig(const xmlcfg::Element& root) {
  PipelineConfig config;
  if (root.name != "sensei") {
    throw std::invalid_argument("sensei: configuration root must be <sensei>");
  }
  const xmlcfg::Element* pipeline = root.FindChild("pipeline");
  if (pipeline == nullptr) {
    // Environment default (CI's async-default lane); explicit XML wins.
    const char* env = std::getenv("NEK_SENSEI_ASYNC");
    if (env != nullptr) {
      const std::string value = env;
      config.async = value == "1" || value == "on" || value == "ON";
    }
    return config;
  }
  const std::string mode = pipeline->Attr("mode", "sync");
  if (mode == "async") {
    config.async = true;
  } else if (mode != "sync") {
    throw std::invalid_argument("sensei: unknown pipeline mode '" + mode +
                                "' (expected sync or async)");
  }
  const long depth = pipeline->AttrInt("depth", config.depth);
  if (depth < 1) {
    throw std::invalid_argument("sensei: pipeline depth must be >= 1");
  }
  config.depth = static_cast<int>(depth);
  return config;
}

std::size_t ConfigurableAnalysis::TotalBytesWritten() const {
  std::size_t total = 0;
  for (const Entry& entry : entries_) total += entry.adaptor->BytesWritten();
  return total;
}

std::shared_ptr<AnalysisAdaptor> ConfigurableAnalysis::Find(
    const std::string& kind) const {
  for (const Entry& entry : entries_) {
    if (entry.adaptor->Kind() == kind) return entry.adaptor;
  }
  return nullptr;
}

}  // namespace sensei
