#include "sensei/histogram_adaptor.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace sensei {

HistogramAnalysisAdaptor::HistogramAnalysisAdaptor(HistogramOptions options)
    : options_(std::move(options)) {
  if (options_.bins < 1) {
    throw std::invalid_argument("sensei: histogram needs >= 1 bin");
  }
}

bool HistogramAnalysisAdaptor::Execute(DataAdaptor& data) {
  mpimini::Comm& comm = data.GetCommunicator();
  std::shared_ptr<svtk::UnstructuredGrid> mesh = data.GetMesh(0);
  if (!mesh) return false;
  if (!mesh->PointArray(options_.array) && !mesh->CellArray(options_.array)) {
    if (!data.AddArray(*mesh, options_.array, options_.centering)) {
      return false;
    }
  }
  const svtk::DataArray* array =
      options_.centering == svtk::Centering::kPoint
          ? mesh->PointArray(options_.array)
          : mesh->CellArray(options_.array);
  const bool mag = options_.by_magnitude && array->Components() > 1;

  auto value_of = [&](std::size_t t) {
    return mag ? array->Magnitude(t) : array->At(t);
  };

  double local_min = 0.0, local_max = 0.0;
  if (array->Tuples() > 0) {
    local_min = local_max = value_of(0);
    for (std::size_t t = 1; t < array->Tuples(); ++t) {
      const double v = value_of(t);
      local_min = std::min(local_min, v);
      local_max = std::max(local_max, v);
    }
  }
  lo_ = comm.AllReduceValue(local_min, mpimini::Op::kMin);
  hi_ = comm.AllReduceValue(local_max, mpimini::Op::kMax);
  const double width = hi_ > lo_ ? (hi_ - lo_) / options_.bins : 1.0;

  std::vector<long> local(static_cast<std::size_t>(options_.bins), 0);
  for (std::size_t t = 0; t < array->Tuples(); ++t) {
    const int bin = std::clamp(
        static_cast<int>((value_of(t) - lo_) / width), 0, options_.bins - 1);
    ++local[static_cast<std::size_t>(bin)];
  }
  comm.AllReduce(std::span<long>(local), mpimini::Op::kSum);
  counts_ = std::move(local);

  if (!options_.output_dir.empty() && comm.Rank() == 0) {
    char name[512];
    std::snprintf(name, sizeof(name), "%s/histogram_%s_%06d.txt",
                  options_.output_dir.c_str(), options_.array.c_str(),
                  data.GetDataTimeStep());
    std::ofstream out(name);
    std::size_t bytes = 0;
    for (int b = 0; b < options_.bins; ++b) {
      char line[128];
      const int len = std::snprintf(line, sizeof(line), "%g %ld\n",
                                    lo_ + (b + 0.5) * width,
                                    counts_[static_cast<std::size_t>(b)]);
      out << line;
      bytes += static_cast<std::size_t>(len);
    }
    bytes_written_ += bytes;
  }
  return true;
}

}  // namespace sensei
