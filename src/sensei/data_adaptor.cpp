#include "sensei/data_adaptor.hpp"

// The abstract interfaces are header-only; this TU anchors their vtables.

namespace sensei {}  // namespace sensei
