// The SENSEI generic in situ interface (Ayachit et al., ISAV 2016), reduced
// to the surface this reproduction exercises.
//
// A simulation exposes its state by implementing DataAdaptor (Listing 2 of
// the paper); analysis backends implement AnalysisAdaptor and pull meshes
// and arrays through the data adaptor.  The two sides are decoupled: any
// analysis can consume any simulation, and the active analyses are chosen
// at runtime from an XML file (ConfigurableAnalysis) without recompiling.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "mpimini/comm.hpp"
#include "svtk/unstructured_grid.hpp"

namespace sensei {

/// Description of one data array available on a mesh.
struct ArrayMetadata {
  std::string name;
  svtk::Centering centering = svtk::Centering::kPoint;
  int components = 1;
};

/// Description of one mesh, global across ranks.
struct MeshMetadata {
  std::string mesh_name = "mesh";
  int num_blocks = 1;  ///< global block count (one block per rank here)
  std::array<double, 6> global_bounds{};
  std::vector<ArrayMetadata> arrays;
};

/// Abstract simulation-side interface: relays simulation state, shaped as
/// the VTK data model, to analysis adaptors.
class DataAdaptor {
 public:
  virtual ~DataAdaptor() = default;

  /// Number of meshes the simulation exposes.
  virtual int GetNumberOfMeshes() = 0;

  /// Metadata for mesh `id` (collective: involves a bounds reduction).
  virtual MeshMetadata GetMeshMetadata(int id) = 0;

  /// This rank's block of mesh `id`, geometry only (no arrays yet).
  /// The adaptor may cache; callers must not mutate geometry.
  virtual std::shared_ptr<svtk::UnstructuredGrid> GetMesh(int id) = 0;

  /// Attach the named array to a mesh previously returned by GetMesh.
  /// Returns false if the array is unknown.
  virtual bool AddArray(svtk::UnstructuredGrid& mesh, const std::string& name,
                        svtk::Centering centering) = 0;

  /// Drop any cached meshes/arrays (called after each analysis round;
  /// SENSEI's ReleaseData).
  virtual void ReleaseData() {}

  // ---- Common envelope ----------------------------------------------

  [[nodiscard]] int GetDataTimeStep() const { return step_; }
  [[nodiscard]] double GetDataTime() const { return time_; }
  void SetPipelineTime(int step, double time) {
    step_ = step;
    time_ = time;
  }

  [[nodiscard]] mpimini::Comm& GetCommunicator() { return comm_; }
  void SetCommunicator(mpimini::Comm comm) { comm_ = comm; }

 private:
  int step_ = 0;
  double time_ = 0.0;
  mpimini::Comm comm_;
};

/// Abstract analysis-side interface.
class AnalysisAdaptor {
 public:
  virtual ~AnalysisAdaptor() = default;

  /// Run the analysis against the current simulation state. Collective
  /// over the data adaptor's communicator. Returns false on failure.
  virtual bool Execute(DataAdaptor& data) = 0;

  /// Flush and release resources at end of run.
  virtual void Finalize() {}

  /// Human-readable adaptor kind ("catalyst", "checkpoint", ...).
  [[nodiscard]] virtual std::string Kind() const = 0;

  /// The array names this analysis will pull through AddArray when it
  /// executes.  An EMPTY list means "every advertised metadata array" (the
  /// checkpoint convention).  The async pipeline uses this to snapshot only
  /// the fields the due analyses actually consume; names may include
  /// derived fields (vorticity, qcriterion) that are never advertised.
  [[nodiscard]] virtual std::vector<std::string> RequestedArrays() const {
    return {};
  }

  /// Total bytes this adaptor wrote to storage so far (images, checkpoint
  /// files, ...); feeds the paper's storage-economy comparison.
  [[nodiscard]] virtual std::size_t BytesWritten() const { return 0; }
};

}  // namespace sensei
