#include "sensei/adios_adaptor.hpp"

namespace sensei {

AdiosAnalysisAdaptor::AdiosAnalysisAdaptor(mpimini::Comm world,
                                           int reader_world_rank,
                                           AdiosOptions options)
    : options_(std::move(options)), writer_(world, reader_world_rank,
                                            options_.sst) {}

bool AdiosAnalysisAdaptor::Execute(DataAdaptor& data) {
  MeshMetadata metadata = data.GetMeshMetadata(0);
  std::shared_ptr<svtk::UnstructuredGrid> mesh = data.GetMesh(0);
  if (!mesh) return false;

  std::vector<std::string> names = options_.arrays;
  if (names.empty()) {
    for (const ArrayMetadata& a : metadata.arrays) names.push_back(a.name);
  }
  for (const std::string& name : names) {
    if (mesh->PointArray(name) || mesh->CellArray(name)) continue;
    svtk::Centering centering = svtk::Centering::kPoint;
    for (const ArrayMetadata& a : metadata.arrays) {
      if (a.name == name) centering = a.centering;
    }
    if (!data.AddArray(*mesh, name, centering)) return false;
  }

  writer_.BeginStep(data.GetDataTimeStep());
  // Zero-copy staging: each grid plane is staged as its own variable whose
  // bulk bytes are views into the mesh's own buffers; the single contiguous
  // copy happens at the transport pack inside EndStep (coded planes are
  // encoded there too — on the async worker in async pipeline mode).
  StageGrid(writer_, *mesh, options_.codecs);
  const double time = data.GetDataTime();
  writer_.Put("time", std::as_bytes(std::span<const double>(&time, 1)));
  writer_.EndStep();
  return true;
}

void AdiosAnalysisAdaptor::Finalize() {
  if (finalized_) return;
  writer_.Close();
  finalized_ = true;
}

}  // namespace sensei
