// Endpoint-side DataAdaptor: presents grids received over the SST stream to
// ordinary analysis adaptors, so the same Catalyst/Checkpoint/Stats code
// runs unchanged in situ and in transit (SENSEI's core promise).
//
// One endpoint rank serves several writers (4:1 in the paper); their blocks
// are exposed as one mesh whose local piece is the union of the received
// blocks, merged into a single grid.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "adios/marshal.hpp"
#include "sensei/data_adaptor.hpp"

namespace sensei {

class InTransitDataAdaptor final : public DataAdaptor {
 public:
  /// `endpoint_comm` spans only the endpoint ranks (used for collective
  /// reductions among consumers).
  explicit InTransitDataAdaptor(mpimini::Comm endpoint_comm) {
    SetCommunicator(endpoint_comm);
  }

  /// Install the payloads of one completed SST step (writer rank -> BP
  /// payload with a "mesh" variable).
  void SetStep(int step, double time,
               const std::map<int, adios::StepPayload>& payloads);

  int GetNumberOfMeshes() override { return 1; }
  MeshMetadata GetMeshMetadata(int id) override;
  std::shared_ptr<svtk::UnstructuredGrid> GetMesh(int id) override;
  bool AddArray(svtk::UnstructuredGrid& mesh, const std::string& name,
                svtk::Centering centering) override;
  void ReleaseData() override;

 private:
  /// Deserialized blocks from this step's writers.
  std::vector<std::shared_ptr<svtk::UnstructuredGrid>> blocks_;
  std::shared_ptr<svtk::UnstructuredGrid> merged_;
};

/// Concatenate several grids into one (points and cells renumbered; arrays
/// present in every block are carried over).
std::shared_ptr<svtk::UnstructuredGrid> MergeBlocks(
    const std::vector<std::shared_ptr<svtk::UnstructuredGrid>>& blocks);

}  // namespace sensei
