// Catalyst-style AnalysisAdaptor: in situ image rendering.
//
// The paper's Catalyst configuration renders images via ParaView/OSPRay
// driven by a Python pipeline; here the same role is played by the render
// module (rasterize local blocks, depth-composite across ranks, write PPM).
// Each Execute renders every configured view — the in transit mesoscale
// case renders two images per trigger, matching §4.2.
#pragma once

#include <string>
#include <vector>

#include "render/compositor.hpp"
#include "render/image_io.hpp"
#include "sensei/data_adaptor.hpp"

namespace sensei {

/// One rendered view (camera + coloring).
struct CatalystView {
  std::string array = "velocity";
  svtk::Centering centering = svtk::Centering::kPoint;
  bool color_by_magnitude = false;
  std::string colormap = "viridis";
  double azimuth = 45.0;    ///< degrees in the x-y plane
  double elevation = 25.0;  ///< degrees above the x-y plane
  double zoom = 1.0;
  double range_min = 0.0;   ///< color range; min==max => per-frame auto
  double range_max = 0.0;
  /// Optional ParaView-style threshold (only cells inside the band drawn).
  std::optional<double> threshold_min;
  std::optional<double> threshold_max;
  /// Optional Contour-filter mode: extract the isosurface of `iso_array`
  /// (defaults to `array` when empty) at this value and color it by
  /// `array`; replaces the surface rendering of the grid.
  std::optional<double> isovalue;
  std::string iso_array;
  /// Optional Slice-filter mode: only cells straddling axis = position.
  std::optional<int> slice_axis;
  double slice_position = 0.0;
  std::string name = "view";  ///< used in output filenames
};

struct CatalystOptions {
  int width = 640;
  int height = 480;
  std::string output_dir = ".";
  std::string prefix = "render";
  /// "png" (zlib-compressed, what a ParaView pipeline writes) or "ppm".
  std::string format = "png";
  /// Overlay a ParaView-style scalar bar legend on every view.
  bool scalar_bar = true;
  std::vector<CatalystView> views;
};

class CatalystAnalysisAdaptor final : public AnalysisAdaptor {
 public:
  explicit CatalystAnalysisAdaptor(CatalystOptions options);

  bool Execute(DataAdaptor& data) override;
  void Finalize() override {}
  [[nodiscard]] std::string Kind() const override { return "catalyst"; }
  [[nodiscard]] std::vector<std::string> RequestedArrays() const override {
    // Views may pull derived fields (vorticity, qcriterion) by name, and an
    // isosurface view pulls its iso_array on top of the colored array.
    std::vector<std::string> names;
    auto add = [&](const std::string& name) {
      if (name.empty()) return;
      for (const std::string& have : names) {
        if (have == name) return;
      }
      names.push_back(name);
    };
    for (const CatalystView& view : options_.views) {
      add(view.array);
      if (view.isovalue) add(view.iso_array.empty() ? view.array
                                                    : view.iso_array);
    }
    return names;
  }
  [[nodiscard]] std::size_t BytesWritten() const override {
    return bytes_written_;
  }

  [[nodiscard]] std::size_t ImagesWritten() const { return images_written_; }
  [[nodiscard]] const render::RasterStats& LastStats() const {
    return last_stats_;
  }

 private:
  CatalystOptions options_;
  std::size_t bytes_written_ = 0;
  std::size_t images_written_ = 0;
  render::RasterStats last_stats_;
};

}  // namespace sensei
