// Stats AnalysisAdaptor: lightweight in situ reduction (min / max / mean of
// selected arrays), appended to a text log on rank 0.  The cheapest useful
// analysis — handy as a control point between "no analysis" and rendering.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sensei/data_adaptor.hpp"

namespace sensei {

struct StatsOptions {
  std::vector<std::string> arrays;  ///< empty = all advertised arrays
  std::string log_path;             ///< empty = keep in memory only
};

class StatsAnalysisAdaptor final : public AnalysisAdaptor {
 public:
  explicit StatsAnalysisAdaptor(StatsOptions options)
      : options_(std::move(options)) {}

  bool Execute(DataAdaptor& data) override;
  [[nodiscard]] std::string Kind() const override { return "stats"; }
  [[nodiscard]] std::vector<std::string> RequestedArrays() const override {
    return options_.arrays;  // empty = every advertised array
  }
  [[nodiscard]] std::size_t BytesWritten() const override {
    return bytes_written_;
  }

  struct ArrayStats {
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
  };
  /// Most recent reduction per array (valid on every rank).
  [[nodiscard]] const std::map<std::string, ArrayStats>& Last() const {
    return last_;
  }

 private:
  StatsOptions options_;
  std::map<std::string, ArrayStats> last_;
  std::size_t bytes_written_ = 0;
};

}  // namespace sensei
