// Split grid staging for the transport boundary.
//
// svtk::SerializeChain packs an entire grid into ONE marshal variable,
// which leaves the codec plane nothing to select on.  This layer stages the
// same grid as a family of variables so each plane can carry its own codec
// tag in the BP-like header:
//
//   "mesh"            the skeleton: counts plus array names/components
//                     (tiny, always identity)
//   "mesh.points"     xyz-interleaved f64 point coordinates
//   "mesh.conn"       int64 hex connectivity (8 ids per cell)
//   "mesh.pa.<name>"  one variable per point-centered data array
//   "mesh.ca.<name>"  one variable per cell-centered data array
//
// Every bulk variable is a single zero-copy view of the grid's own storage,
// so the identity path costs exactly what the old single-blob path did.
// ReassembleGrid inverts the staging on the endpoint; payloads that carry a
// legacy single-blob "mesh" (old writers, restart files) fall back to
// svtk::Deserialize, keyed on the leading magic.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "adios/marshal.hpp"
#include "codec/codec.hpp"
#include "core/buffer.hpp"
#include "svtk/unstructured_grid.hpp"

namespace sensei {

/// Per-plane codec selection for a staged grid (parsed from the SENSEI
/// XML's <codec> elements; see ParseTransportCodecs).
struct TransportCodecs {
  codec::Spec points;
  codec::Spec connectivity;
  /// Per data-array specs, keyed by array name; "*" is the wildcard
  /// fallback for arrays without their own entry.
  std::map<std::string, codec::Spec> arrays;

  /// The spec for a named data array: exact entry, else "*", else identity.
  [[nodiscard]] codec::Spec ForArray(const std::string& name) const;
  /// True when any plane selects a non-identity codec.
  [[nodiscard]] bool Any() const;
};

/// Receives one staged variable: name, scatter-gather bytes, codec tag.
using StagePut = std::function<void(const std::string& name,
                                    core::BufferChain chain,
                                    const codec::Spec& spec)>;

/// Stage `grid` through `put` as the variable family documented above.
/// Throws std::invalid_argument if a blockfloat spec targets the int64
/// connectivity plane.
void StageGridTo(const StagePut& put, const svtk::UnstructuredGrid& grid,
                 const TransportCodecs& codecs);

/// Stage `grid` onto any writer with
/// PutChain(name, core::BufferChain, codec::Spec) — adios::SstWriter and
/// adios::BpFileWriter both qualify.
template <typename Writer>
void StageGrid(Writer& writer, const svtk::UnstructuredGrid& grid,
               const TransportCodecs& codecs) {
  StageGridTo(
      [&writer](const std::string& name, core::BufferChain chain,
                const codec::Spec& spec) {
        writer.PutChain(name, std::move(chain), spec);
      },
      grid, codecs);
}

/// Rebuild a grid from one writer's unmarshaled payload (the inverse of
/// StageGridTo; decoding already happened in the unmarshal layer).  Falls
/// back to svtk::Deserialize when "mesh" holds a legacy single-blob grid.
/// Throws std::runtime_error naming the missing or mismatched variable on
/// malformed payloads.
[[nodiscard]] svtk::UnstructuredGrid ReassembleGrid(
    const adios::StepPayload& payload);

}  // namespace sensei
