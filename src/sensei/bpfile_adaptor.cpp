#include "sensei/bpfile_adaptor.hpp"

#include <cstdio>

namespace sensei {

std::string BpFileAnalysisAdaptor::FilePath(int rank) const {
  char name[512];
  std::snprintf(name, sizeof(name), "%s/%s_rank%04d.bp",
                options_.output_dir.c_str(), options_.prefix.c_str(), rank);
  return name;
}

bool BpFileAnalysisAdaptor::Execute(DataAdaptor& data) {
  MeshMetadata metadata = data.GetMeshMetadata(0);
  std::shared_ptr<svtk::UnstructuredGrid> mesh = data.GetMesh(0);
  if (!mesh) return false;

  std::vector<std::string> names = options_.arrays;
  if (names.empty()) {
    for (const ArrayMetadata& a : metadata.arrays) names.push_back(a.name);
  }
  for (const std::string& name : names) {
    if (mesh->PointArray(name) || mesh->CellArray(name)) continue;
    svtk::Centering centering = svtk::Centering::kPoint;
    for (const ArrayMetadata& a : metadata.arrays) {
      if (a.name == name) centering = a.centering;
    }
    if (!data.AddArray(*mesh, name, centering)) return false;
  }

  if (!writer_) {
    writer_ = std::make_unique<adios::BpFileWriter>(
        FilePath(data.GetCommunicator().Rank()));
  }
  writer_->BeginStep(data.GetDataTimeStep());
  StageGrid(*writer_, *mesh, options_.codecs);
  const double time = data.GetDataTime();
  writer_->Put("time", std::as_bytes(std::span<const double>(&time, 1)));
  writer_->EndStep();
  return true;
}

void BpFileAnalysisAdaptor::Finalize() {
  if (writer_) {
    bytes_final_ = writer_->BytesWritten();
    writer_->Close();
    writer_.reset();
  }
}

}  // namespace sensei
