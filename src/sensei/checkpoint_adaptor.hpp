// Checkpointing AnalysisAdaptor: periodically dumps raw simulation fields
// to disk, the baseline the paper compares in situ rendering against.
//
// Each rank writes its own block as a .vtu file (the in transit endpoint of
// §4.2 writes "the pressure and velocity fields to the storage system as
// VTU files"); binary encoding by default.  The accumulated on-disk bytes
// are the "19 GB vs 6.5 MB" side of the storage-economy comparison, scaled
// to this reproduction's problem sizes.
#pragma once

#include <string>
#include <vector>

#include "sensei/data_adaptor.hpp"
#include "svtk/vtu_writer.hpp"

namespace sensei {

struct CheckpointOptions {
  std::string output_dir = ".";
  std::string prefix = "chk";
  svtk::VtuEncoding encoding = svtk::VtuEncoding::kBinary;
  /// Arrays to include; empty = every array the metadata lists.
  std::vector<std::string> arrays;
};

class CheckpointAnalysisAdaptor final : public AnalysisAdaptor {
 public:
  explicit CheckpointAnalysisAdaptor(CheckpointOptions options)
      : options_(std::move(options)) {}

  bool Execute(DataAdaptor& data) override;
  [[nodiscard]] std::string Kind() const override { return "checkpoint"; }
  [[nodiscard]] std::vector<std::string> RequestedArrays() const override {
    return options_.arrays;  // empty = every advertised array
  }
  [[nodiscard]] std::size_t BytesWritten() const override {
    return bytes_written_;
  }
  [[nodiscard]] std::size_t FilesWritten() const { return files_written_; }

  /// Path a given (step, rank) checkpoint file is written to.
  [[nodiscard]] std::string FilePath(int step, int rank) const;

 private:
  CheckpointOptions options_;
  std::size_t bytes_written_ = 0;
  std::size_t files_written_ = 0;
};

}  // namespace sensei
