// BP-file AnalysisAdaptor: streams each trigger's mesh block into a
// rank-local ADIOS-style BP file instead of a live SST connection — the
// post-hoc counterpart of the in transit workflow.  A later consumer
// (examples/posthoc_analysis) replays the files through the same SENSEI
// analyses that run in situ, the classic in-situ-vs-post-hoc comparison.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "adios/bp_file.hpp"
#include "sensei/data_adaptor.hpp"
#include "sensei/transport_stage.hpp"

namespace sensei {

struct BpFileOptions {
  std::string output_dir = ".";
  std::string prefix = "stream";
  /// Arrays shipped with the mesh; empty = every advertised array.
  std::vector<std::string> arrays;
  /// Per-plane transport codecs (identity everywhere by default) — the
  /// same codec plane the SST stream uses, reused for the file engine.
  TransportCodecs codecs;
};

class BpFileAnalysisAdaptor final : public AnalysisAdaptor {
 public:
  explicit BpFileAnalysisAdaptor(BpFileOptions options)
      : options_(std::move(options)) {}

  bool Execute(DataAdaptor& data) override;
  void Finalize() override;
  [[nodiscard]] std::string Kind() const override { return "bpfile"; }
  [[nodiscard]] std::vector<std::string> RequestedArrays() const override {
    return options_.arrays;  // empty = every advertised array
  }
  [[nodiscard]] std::size_t BytesWritten() const override {
    return writer_ ? writer_->BytesWritten() : bytes_final_;
  }

  /// Path of the BP file a given rank writes.
  [[nodiscard]] std::string FilePath(int rank) const;

 private:
  BpFileOptions options_;
  std::unique_ptr<adios::BpFileWriter> writer_;  // opened on first Execute
  std::size_t bytes_final_ = 0;
};

}  // namespace sensei
