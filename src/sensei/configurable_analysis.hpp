// ConfigurableAnalysis: SENSEI's runtime-swappable analysis front end.
//
// The active analyses are declared in an XML file (Listing 1 of the paper):
//
//   <sensei>
//     <analysis type="catalyst" frequency="100" output="out" width="640"
//               height="480">
//       <render array="temperature" azimuth="45" elevation="25"/>
//       <render array="velocity" magnitude="1" colormap="coolwarm"/>
//     </analysis>
//     <analysis type="checkpoint" frequency="100" output="out"/>
//     <analysis type="stats" frequency="10" arrays="temperature"/>
//   </sensei>
//
// Changing the in situ pipeline — e.g. enabling Catalyst rendering — is an
// XML edit, not a recompile.  Additional adaptor types (the in transit
// "adios" sender, whose endpoint wiring the workflow driver owns) are
// plugged in through RegisterFactory.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "instrument/telemetry.hpp"
#include "sensei/data_adaptor.hpp"
#include "sensei/transport_stage.hpp"
#include "xmlcfg/xml.hpp"

namespace sensei {

class ConfigurableAnalysis {
 public:
  using Factory = std::function<std::shared_ptr<AnalysisAdaptor>(
      const xmlcfg::Element&, mpimini::Comm&)>;

  /// Built-in types preregistered: catalyst, checkpoint, stats, histogram.
  explicit ConfigurableAnalysis(mpimini::Comm comm);

  /// Add (or override) a factory for an <analysis type="..."> value.
  void RegisterFactory(const std::string& type, Factory factory);

  /// Instantiate every enabled <analysis> child of the <sensei> root.
  /// Throws on unknown types or malformed configuration.
  void Initialize(const xmlcfg::Element& root);
  void InitializeFromFile(const std::string& path);

  /// Run every analysis whose frequency divides the current step; calls
  /// ReleaseData() on the data adaptor afterwards. Returns false if any
  /// analysis failed.
  bool Execute(DataAdaptor& data);

  /// Finalize all adaptors (flush streams, close files).
  void Finalize();

  struct Entry {
    std::string type;
    int frequency = 1;
    std::shared_ptr<AnalysisAdaptor> adaptor;
    /// Precomputed "analysis.<type>" span name (spans borrow the string, so
    /// it must live as long as recording can happen — it lives here).
    std::string span_name;
  };
  [[nodiscard]] const std::vector<Entry>& Analyses() const { return entries_; }

  /// Sum of BytesWritten() over all adaptors.
  [[nodiscard]] std::size_t TotalBytesWritten() const;

  /// True when at least one analysis is due at `step` (its frequency
  /// divides the step) — whether Execute(data) would run anything.
  [[nodiscard]] bool AnyDue(int step) const;

  /// Union of RequestedArrays() over the analyses due at `step`.  nullopt
  /// means at least one due analysis requests "every advertised array";
  /// an empty vector means nothing is due.  The async pipeline snapshots
  /// exactly this set at the step boundary.
  [[nodiscard]] std::optional<std::vector<std::string>> RequiredArrays(
      int step) const;

  /// First adaptor of the given kind, or nullptr.
  [[nodiscard]] std::shared_ptr<AnalysisAdaptor> Find(
      const std::string& kind) const;

 private:
  mpimini::Comm comm_;
  std::map<std::string, Factory> factories_;
  std::vector<Entry> entries_;
};

/// Helper shared by factories: split a comma-separated attribute.
std::vector<std::string> SplitList(const std::string& csv);

/// Parse the optional <codec type="identity|blockfloat|shuffle_rle"
/// rate="N" delta="0|1"/> child of `parent` into a codec::Spec.  An absent
/// child means identity; an unknown type or out-of-range rate throws
/// std::invalid_argument.
[[nodiscard]] codec::Spec ParseCodecSpec(const xmlcfg::Element& parent);

/// Parse the transport-codec children of an <analysis> element:
///
///   <analysis type="adios" ...>
///     <points><codec type="blockfloat" rate="8"/></points>
///     <connectivity><codec type="shuffle_rle" delta="1"/></connectivity>
///     <array name="*"><codec type="blockfloat" rate="8"/></array>
///   </analysis>
///
/// <array> entries select per-array codecs by name ("*" is the wildcard
/// fallback).  Blockfloat on the int64 connectivity plane is rejected here,
/// at configuration time.
[[nodiscard]] TransportCodecs ParseTransportCodecs(
    const xmlcfg::Element& analysis);

/// Parse the optional <telemetry trace="..." summary="..." capacity="..."/>
/// child of a <sensei> root into a TelemetryConfig.  Presence of the element
/// enables telemetry; absence returns the all-disabled default, so existing
/// configurations are unaffected.
[[nodiscard]] instrument::TelemetryConfig ParseTelemetryConfig(
    const xmlcfg::Element& root);

/// Execution mode of the in situ pipeline (DESIGN.md §3b).
struct PipelineConfig {
  /// false: Bridge::Update runs the analyses inline on the rank thread
  /// (the default — byte-identical to the pre-async behaviour).  true:
  /// updates run on a per-rank worker thread over staged snapshots.
  bool async = false;
  /// Staging slots (async only): 2 = double buffering.  Bounds how many
  /// steps of snapshots may be in flight before the rank thread blocks.
  int depth = 2;
};

/// Parse the optional <pipeline mode="sync|async" depth="N"/> child of a
/// <sensei> root.  When the element is absent, the NEK_SENSEI_ASYNC
/// environment variable ("1"/"on") selects async with the default depth —
/// the hook the TSan CI lane uses to run the whole suite async-default.
/// An explicit mode="sync" always wins over the environment.
[[nodiscard]] PipelineConfig ParsePipelineConfig(const xmlcfg::Element& root);

}  // namespace sensei
