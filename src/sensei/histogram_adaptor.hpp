// Histogram AnalysisAdaptor: the canonical SENSEI demo analysis — a global
// histogram of one array, reduced across ranks and written by rank 0.
#pragma once

#include <string>
#include <vector>

#include "sensei/data_adaptor.hpp"

namespace sensei {

struct HistogramOptions {
  std::string array = "velocity";
  svtk::Centering centering = svtk::Centering::kPoint;
  bool by_magnitude = false;
  int bins = 32;
  std::string output_dir;  ///< empty = keep in memory only
};

class HistogramAnalysisAdaptor final : public AnalysisAdaptor {
 public:
  explicit HistogramAnalysisAdaptor(HistogramOptions options);

  bool Execute(DataAdaptor& data) override;
  [[nodiscard]] std::string Kind() const override { return "histogram"; }
  [[nodiscard]] std::vector<std::string> RequestedArrays() const override {
    return {options_.array};
  }
  [[nodiscard]] std::size_t BytesWritten() const override {
    return bytes_written_;
  }

  /// Most recent global histogram (valid on every rank).
  [[nodiscard]] const std::vector<long>& Counts() const { return counts_; }
  [[nodiscard]] double RangeMin() const { return lo_; }
  [[nodiscard]] double RangeMax() const { return hi_; }

 private:
  HistogramOptions options_;
  std::vector<long> counts_;
  double lo_ = 0.0;
  double hi_ = 0.0;
  std::size_t bytes_written_ = 0;
};

}  // namespace sensei
