#include "sensei/checkpoint_adaptor.hpp"

#include <algorithm>
#include <cstdio>

#include "instrument/metrics.hpp"
#include "instrument/provenance.hpp"
#include "instrument/tracer.hpp"

namespace sensei {

std::string CheckpointAnalysisAdaptor::FilePath(int step, int rank) const {
  char name[512];
  std::snprintf(name, sizeof(name), "%s/%s_step%06d_rank%04d.vtu",
                options_.output_dir.c_str(), options_.prefix.c_str(), step,
                rank);
  return name;
}

bool CheckpointAnalysisAdaptor::Execute(DataAdaptor& data) {
  MeshMetadata metadata = data.GetMeshMetadata(0);
  std::shared_ptr<svtk::UnstructuredGrid> mesh = data.GetMesh(0);
  if (!mesh) return false;

  // Select arrays: explicit list or everything advertised.
  const std::vector<std::string>* names = &options_.arrays;
  std::vector<std::string> all;
  if (names->empty()) {
    for (const ArrayMetadata& a : metadata.arrays) all.push_back(a.name);
    names = &all;
  }
  for (const std::string& name : *names) {
    if (mesh->PointArray(name) || mesh->CellArray(name)) continue;
    svtk::Centering centering = svtk::Centering::kPoint;
    for (const ArrayMetadata& a : metadata.arrays) {
      if (a.name == name) centering = a.centering;
    }
    if (!data.AddArray(*mesh, name, centering)) return false;
  }

  const std::string path = FilePath(data.GetDataTimeStep(),
                                    data.GetCommunicator().Rank());
  {
    instrument::Span write_span("checkpoint.write");
    bytes_written_ += svtk::WriteVtu(*mesh, path, options_.encoding);
    ++files_written_;
  }
  // End-to-end latency: causal origin of the step to its checkpoint being
  // on disk.  Rank 0 of the analysis communicator observes (the write is
  // per-rank, but one sample per step keeps the histogram count
  // partition-independent).
  if (data.GetCommunicator().Rank() == 0) {
    const instrument::StepProvenance* origin = instrument::CurrentProvenance();
    if (origin != nullptr && origin->Valid()) {
      if (auto* metrics = instrument::CurrentMetrics()) {
        metrics->Observe(
            "e2e.step_to_checkpoint_seconds",
            std::max(0.0, static_cast<double>(instrument::GlobalNowNs() -
                                              origin->GlobalTimestampNs()) *
                              1e-9));
      }
    }
  }
  return true;
}

}  // namespace sensei
