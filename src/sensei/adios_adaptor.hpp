// ADIOS AnalysisAdaptor: the in transit sender.
//
// On the simulation side this adaptor looks like any other SENSEI analysis,
// but instead of computing anything it serializes the local mesh block and
// streams it to a SENSEI endpoint over the SST engine ("the endpoint of our
// workflow is always a SENSEI data consumer", §4.2).  The actual analysis
// (rendering / checkpointing) runs on the endpoint ranks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "adios/sst.hpp"
#include "sensei/data_adaptor.hpp"
#include "sensei/transport_stage.hpp"

namespace sensei {

struct AdiosOptions {
  /// Arrays shipped with the mesh; empty = every advertised array.
  std::vector<std::string> arrays;
  adios::SstParams sst;
  /// Per-plane transport codecs (identity everywhere by default).
  TransportCodecs codecs;
};

class AdiosAnalysisAdaptor final : public AnalysisAdaptor {
 public:
  /// `world` is the communicator containing both sim and endpoint ranks;
  /// `reader_world_rank` is this writer's assigned endpoint.
  AdiosAnalysisAdaptor(mpimini::Comm world, int reader_world_rank,
                       AdiosOptions options);

  bool Execute(DataAdaptor& data) override;
  void Finalize() override;
  [[nodiscard]] std::string Kind() const override { return "adios"; }
  [[nodiscard]] std::vector<std::string> RequestedArrays() const override {
    return options_.arrays;  // empty = every advertised array
  }

  [[nodiscard]] const adios::SstStats& TransportStats() const {
    return writer_.Stats();
  }

  /// Live staging-queue occupancy / limit (heartbeat display).
  [[nodiscard]] int QueueDepth() const { return writer_.QueueDepth(); }
  [[nodiscard]] int QueueLimit() const { return writer_.QueueLimit(); }

  /// Cumulative raw/wire variable bytes shipped (heartbeat wire column;
  /// safe from any thread, like QueueDepth).
  [[nodiscard]] std::size_t RawBytes() const { return writer_.RawBytes(); }
  [[nodiscard]] std::size_t WireBytes() const { return writer_.WireBytes(); }

 private:
  AdiosOptions options_;
  adios::SstWriter writer_;
  bool finalized_ = false;
};

}  // namespace sensei
