#include "sensei/autocorrelation_adaptor.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace sensei {

AutocorrelationAnalysisAdaptor::AutocorrelationAnalysisAdaptor(
    AutocorrelationOptions options)
    : options_(std::move(options)) {
  if (options_.window < 2) {
    throw std::invalid_argument("sensei: autocorrelation window must be >= 2");
  }
  if (options_.max_lag < 1 || options_.max_lag >= options_.window) {
    throw std::invalid_argument(
        "sensei: autocorrelation max_lag must be in [1, window)");
  }
}

bool AutocorrelationAnalysisAdaptor::Execute(DataAdaptor& data) {
  mpimini::Comm& comm = data.GetCommunicator();
  std::shared_ptr<svtk::UnstructuredGrid> mesh = data.GetMesh(0);
  if (!mesh) return false;
  if (!mesh->PointArray(options_.array) && !mesh->CellArray(options_.array)) {
    if (!data.AddArray(*mesh, options_.array, options_.centering)) {
      return false;
    }
  }
  const svtk::DataArray* array =
      options_.centering == svtk::Centering::kPoint
          ? mesh->PointArray(options_.array)
          : mesh->CellArray(options_.array);
  const bool mag = options_.by_magnitude && array->Components() > 1;

  // Snapshot the (scalar-reduced) field into the sliding window.
  instrument::TrackedBuffer<double> snapshot("autocorrelation",
                                             array->Tuples());
  for (std::size_t t = 0; t < array->Tuples(); ++t) {
    snapshot[t] = mag ? array->Magnitude(t) : array->At(t);
  }
  history_.push_back(std::move(snapshot));
  if (static_cast<int>(history_.size()) > options_.window) {
    history_.pop_front();
  }
  if (static_cast<int>(history_.size()) < options_.window) {
    return true;  // window still filling
  }

  // Temporal mean per point over the window, then autocorrelation per lag,
  // averaged over points and reduced across ranks.
  const std::size_t n = history_.front().size();
  const int w = options_.window;
  std::vector<double> mean(n, 0.0);
  for (const auto& snap : history_) {
    for (std::size_t i = 0; i < n; ++i) mean[i] += snap[i];
  }
  for (std::size_t i = 0; i < n; ++i) mean[i] /= w;

  std::vector<double> sums(static_cast<std::size_t>(options_.max_lag) + 1,
                           0.0);
  for (int lag = 0; lag <= options_.max_lag; ++lag) {
    double acc = 0.0;
    for (int s = 0; s + lag < w; ++s) {
      const auto& a = history_[static_cast<std::size_t>(s)];
      const auto& b = history_[static_cast<std::size_t>(s + lag)];
      for (std::size_t i = 0; i < n; ++i) {
        acc += (a[i] - mean[i]) * (b[i] - mean[i]);
      }
    }
    sums[static_cast<std::size_t>(lag)] =
        acc / (static_cast<double>(w - lag));
  }
  comm.AllReduce(std::span<double>(sums), mpimini::Op::kSum);

  correlations_.assign(sums.size(), 0.0);
  const double variance = sums[0];
  for (std::size_t lag = 0; lag < sums.size(); ++lag) {
    correlations_[lag] = variance > 0.0 ? sums[lag] / variance : 0.0;
  }

  if (!options_.output_dir.empty() && comm.Rank() == 0) {
    char name[512];
    std::snprintf(name, sizeof(name), "%s/autocorr_%s_%06d.txt",
                  options_.output_dir.c_str(), options_.array.c_str(),
                  data.GetDataTimeStep());
    std::ofstream out(name);
    std::size_t bytes = 0;
    for (std::size_t lag = 0; lag < correlations_.size(); ++lag) {
      char line[64];
      const int len = std::snprintf(line, sizeof(line), "%zu %.6f\n", lag,
                                    correlations_[lag]);
      out << line;
      bytes += static_cast<std::size_t>(len);
    }
    bytes_written_ += bytes;
  }
  return true;
}

}  // namespace sensei
