#include "sensei/catalyst_adaptor.hpp"

#include "render/isosurface.hpp"

#include <algorithm>
#include <cstdio>

#include "instrument/metrics.hpp"
#include "instrument/provenance.hpp"
#include "instrument/tracer.hpp"

namespace sensei {

CatalystAnalysisAdaptor::CatalystAnalysisAdaptor(CatalystOptions options)
    : options_(std::move(options)) {
  if (options_.views.empty()) {
    throw std::invalid_argument("sensei: catalyst needs at least one view");
  }
  if (options_.format != "png" && options_.format != "ppm") {
    throw std::invalid_argument("sensei: catalyst format must be png or ppm");
  }
}

bool CatalystAnalysisAdaptor::Execute(DataAdaptor& data) {
  mpimini::Comm& comm = data.GetCommunicator();
  MeshMetadata metadata = data.GetMeshMetadata(0);
  std::shared_ptr<svtk::UnstructuredGrid> mesh = data.GetMesh(0);
  if (!mesh) return false;

  for (const CatalystView& view : options_.views) {
    if (!mesh->PointArray(view.array) && !mesh->CellArray(view.array)) {
      if (!data.AddArray(*mesh, view.array, view.centering)) return false;
    }
    const std::string iso_array =
        view.iso_array.empty() ? view.array : view.iso_array;
    if (view.isovalue && !mesh->PointArray(iso_array)) {
      if (!data.AddArray(*mesh, iso_array, svtk::Centering::kPoint)) {
        return false;
      }
    }

    render::RenderSpec spec;
    spec.array = view.array;
    spec.centering = view.centering;
    spec.color_by_magnitude = view.color_by_magnitude;
    spec.colormap = view.colormap;
    spec.threshold_min = view.threshold_min;
    spec.threshold_max = view.threshold_max;
    spec.slice_axis = view.slice_axis;
    spec.slice_position = view.slice_position;

    // Global color range: per-frame auto-range needs a reduction so every
    // rank colors consistently.
    if (view.range_min == view.range_max) {
      const svtk::DataArray* array =
          view.centering == svtk::Centering::kPoint
              ? mesh->PointArray(view.array)
              : mesh->CellArray(view.array);
      const bool mag = view.color_by_magnitude && array->Components() > 1;
      auto range = array->ValueRange(mag);
      spec.range_min = comm.AllReduceValue(range.min, mpimini::Op::kMin);
      spec.range_max = comm.AllReduceValue(range.max, mpimini::Op::kMax);
    } else {
      spec.range_min = view.range_min;
      spec.range_max = view.range_max;
    }

    const double aspect = static_cast<double>(options_.width) /
                          static_cast<double>(options_.height);
    const render::Camera camera =
        render::FitCamera(metadata.global_bounds, view.azimuth,
                          view.elevation, aspect, view.zoom);

    render::Framebuffer fb(options_.width, options_.height);
    fb.Clear(spec.background);
    instrument::MetricsRegistry* metrics = instrument::CurrentMetrics();
    {
      instrument::Span render_span("catalyst.render");
      const std::int64_t begin_ns =
          metrics != nullptr ? instrument::Tracer::NowNs() : 0;
      if (view.isovalue) {
        const render::TriangleMesh surface = render::ExtractIsosurface(
            *mesh, iso_array, *view.isovalue, view.array,
            view.color_by_magnitude);
        last_stats_ = render::RasterizeTriangleMesh(
            surface, view.colormap, spec.range_min, spec.range_max, camera,
            fb);
      } else {
        last_stats_ = render::RasterizeGrid(*mesh, spec, camera, fb);
      }
      if (metrics != nullptr) {
        metrics->Observe(
            "catalyst.render_seconds",
            static_cast<double>(instrument::Tracer::NowNs() - begin_ns) *
                1e-9);
      }
    }
    {
      instrument::Span composite_span("catalyst.composite");
      const std::int64_t begin_ns =
          metrics != nullptr ? instrument::Tracer::NowNs() : 0;
      render::CompositeToRoot(comm, fb, /*root=*/0);
      if (metrics != nullptr) {
        metrics->Observe(
            "catalyst.composite_seconds",
            static_cast<double>(instrument::Tracer::NowNs() - begin_ns) *
                1e-9);
      }
    }

    if (comm.Rank() == 0 && options_.scalar_bar) {
      render::DrawScalarBar(render::GetColormap(view.colormap),
                            spec.range_min, spec.range_max, fb);
    }
    if (comm.Rank() == 0) {
      instrument::Span write_span("catalyst.write");
      char name[512];
      std::snprintf(name, sizeof(name), "%s/%s_%s_%06d.%s",
                    options_.output_dir.c_str(), options_.prefix.c_str(),
                    view.name.c_str(), data.GetDataTimeStep(),
                    options_.format.c_str());
      bytes_written_ += options_.format == "ppm"
                            ? render::WritePpm(fb, name)
                            : render::WritePng(fb, name);
      ++images_written_;
      if (metrics != nullptr) {
        metrics->SetTotal("catalyst.bytes_written",
                          static_cast<double>(bytes_written_));
        metrics->SetTotal("catalyst.images",
                          static_cast<double>(images_written_));
      }
    }
  }
  // End-to-end latency: solver-step completion (the wire-carried causal
  // origin, global timeline) to the step's images being on disk.  Observed
  // once per step on the compositing root only, so the histogram count is
  // one sample per rendered step regardless of how the work is partitioned
  // across ranks.
  if (comm.Rank() == 0) {
    const instrument::StepProvenance* origin = instrument::CurrentProvenance();
    if (origin != nullptr && origin->Valid()) {
      if (auto* metrics = instrument::CurrentMetrics()) {
        metrics->Observe(
            "e2e.step_to_image_seconds",
            std::max(0.0, static_cast<double>(instrument::GlobalNowNs() -
                                              origin->GlobalTimestampNs()) *
                              1e-9));
      }
    }
  }
  return true;
}

}  // namespace sensei
