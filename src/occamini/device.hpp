// occamini: an OCCA-style portable device abstraction.
//
// NekRS runs its field data on GPU device memory through OCCA; the paper's
// Catalyst pathway must copy fields from device to host before handing them
// to SENSEI because the VTK data model is host-only.  This module reproduces
// that structure without GPU hardware:
//
//  * Backend::kSerial   — device memory is ordinary host memory.
//  * Backend::kSimGpu   — device memory lives in separate allocations
//    tracked under the "device" category; every host<->device transfer is an
//    explicit, counted memcpy, optionally throttled by a PCIe-like transfer
//    model so the copy cost is visible in per-rank busy time.
//
// "Kernels" are host callables launched through Device::Launch so per-kernel
// counts and times can be reported, mirroring OCCA's kernel objects.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "core/buffer.hpp"
#include "instrument/memory_tracker.hpp"

namespace occamini {

enum class Backend { kSerial, kSimGpu };

/// Byte-count and timing statistics for host<->device traffic.
struct TransferStats {
  std::uint64_t h2d_count = 0;
  std::uint64_t d2h_count = 0;
  std::size_t h2d_bytes = 0;
  std::size_t d2h_bytes = 0;
  double h2d_seconds = 0.0;
  double d2h_seconds = 0.0;
};

/// Simulated interconnect cost per transfer: seconds = latency + bytes/bw.
///
/// The extra time is spent in a sleep, which on this single-core machine
/// yields to other rank threads — modelling a DMA engine that frees the
/// host while the copy is in flight would be wrong for the paper's blocking
/// copies, but the copy still *counts* as rank busy time because mpimini
/// only pauses the busy clock inside its own waits.
struct TransferModel {
  double latency_seconds = 0.0;
  double bytes_per_second = 0.0;  // 0 => infinitely fast

  [[nodiscard]] double Cost(std::size_t bytes) const {
    double s = latency_seconds;
    if (bytes_per_second > 0.0) {
      s += static_cast<double>(bytes) / bytes_per_second;
    }
    return s;
  }
};

/// Per-kernel launch statistics.
struct KernelStats {
  std::uint64_t launches = 0;
  double seconds = 0.0;
};

namespace detail {
struct MemoryBlock;
}  // namespace detail

class Device;

/// Handle to a device allocation (copyable, shared ownership), mirroring
/// occa::memory.
class Memory {
 public:
  Memory() = default;

  [[nodiscard]] std::size_t Bytes() const;
  [[nodiscard]] bool Valid() const { return block_ != nullptr; }

  /// Copy host -> device. `offset` is a byte offset into the device buffer.
  void CopyFrom(const void* host, std::size_t bytes, std::size_t offset = 0);

  /// Copy device -> host.
  void CopyTo(void* host, std::size_t bytes, std::size_t offset = 0) const;

  /// Stage the whole allocation device -> host, landing directly in a
  /// data-plane Buffer tracked under `category`.  This is the one mandatory
  /// copy of the Catalyst path (VTK is host-only); downstream layers adopt
  /// the returned buffer instead of re-copying it.
  [[nodiscard]] core::Buffer ToHost(const std::string& category) const;

  /// ToHost variant that reuses `dest`'s allocation when it is the sole
  /// handle of a block of exactly the right size; otherwise `dest` is
  /// replaced with a fresh buffer (as ToHost).  The async pipeline's staging
  /// slots call this every step so steady-state snapshots perform zero host
  /// allocations — only the mandatory D2H copy.
  void ToHostInto(core::Buffer& dest, const std::string& category) const;

  /// Raw device pointer, for use inside kernels only (host code must go
  /// through CopyFrom/CopyTo, as with a real GPU).
  [[nodiscard]] std::byte* DevicePtr();
  [[nodiscard]] const std::byte* DevicePtr() const;

 private:
  friend class Device;
  explicit Memory(std::shared_ptr<detail::MemoryBlock> block)
      : block_(std::move(block)) {}
  std::shared_ptr<detail::MemoryBlock> block_;
};

/// Typed convenience wrapper over Memory.
template <typename T>
class Array {
 public:
  Array() = default;
  Array(Device& device, std::size_t count, const std::string& label = "device");

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool Valid() const { return memory_.Valid(); }

  void CopyFromHost(std::span<const T> host, std::size_t element_offset = 0) {
    memory_.CopyFrom(host.data(), host.size_bytes(),
                     element_offset * sizeof(T));
  }
  void CopyToHost(std::span<T> host, std::size_t element_offset = 0) const {
    memory_.CopyTo(host.data(), host.size_bytes(), element_offset * sizeof(T));
  }

  /// Stage the whole array into a fresh host Buffer (zero-copy handoff to
  /// the rest of the data plane).
  [[nodiscard]] core::Buffer StageToHost(const std::string& category) const {
    return memory_.ToHost(category);
  }

  /// Slot-reuse staging (see Memory::ToHostInto).
  void StageToHostInto(core::Buffer& dest, const std::string& category) const {
    memory_.ToHostInto(dest, category);
  }

  /// Device-side typed pointer (kernels only).
  T* DevicePtr() { return reinterpret_cast<T*>(memory_.DevicePtr()); }
  const T* DevicePtr() const {
    return reinterpret_cast<const T*>(memory_.DevicePtr());
  }

  [[nodiscard]] Memory& Raw() { return memory_; }
  [[nodiscard]] const Memory& Raw() const { return memory_; }

 private:
  Memory memory_;
  std::size_t count_ = 0;
};

/// A compute device (one per rank in NekRS fashion).
class Device {
 public:
  explicit Device(Backend backend, TransferModel model = {});

  [[nodiscard]] Backend GetBackend() const { return backend_; }

  /// Allocate `bytes` of device memory; tracked under category "device"
  /// against the calling rank's MemoryTracker (if any).
  Memory Malloc(std::size_t bytes, const std::string& label = "device");

  /// Run a "kernel" on the device; counts and times it under `name`.
  void Launch(const std::string& name, const std::function<void()>& body);

  [[nodiscard]] const TransferStats& Transfers() const { return transfers_; }
  [[nodiscard]] const std::map<std::string, KernelStats>& Kernels() const {
    return kernels_;
  }
  [[nodiscard]] std::size_t AllocatedBytes() const { return allocated_; }

  void ResetStats();

 private:
  friend class Memory;
  friend struct detail::MemoryBlock;

  Backend backend_;
  TransferModel model_;
  TransferStats transfers_;
  std::map<std::string, KernelStats> kernels_;
  std::size_t allocated_ = 0;
};

template <typename T>
Array<T>::Array(Device& device, std::size_t count, const std::string& label)
    : memory_(device.Malloc(count * sizeof(T), label)), count_(count) {}

}  // namespace occamini
