#include "occamini/device.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "instrument/timer.hpp"
#include "instrument/tracer.hpp"

namespace occamini {

namespace detail {

// One device allocation. Bytes are tracked under "device" against the
// MemoryTracker of the rank that allocated, for the lifetime of the block.
// The owning Device must outlive all Memory handles (as with occa::device).
struct MemoryBlock {
  MemoryBlock(Device* d, std::size_t bytes, const std::string& label)
      : device(d), storage(label, bytes) {}

  ~MemoryBlock() { device->allocated_ -= storage.Bytes(); }

  Device* device;
  instrument::TrackedBuffer<std::byte> storage;
};

}  // namespace detail

namespace {

void SimulateTransfer(const TransferModel& model, std::size_t bytes) {
  const double cost = model.Cost(bytes);
  if (cost > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(cost));
  }
}

}  // namespace

Device::Device(Backend backend, TransferModel model)
    : backend_(backend), model_(model) {}

Memory Device::Malloc(std::size_t bytes, const std::string& label) {
  auto block = std::make_shared<detail::MemoryBlock>(this, bytes, label);
  allocated_ += bytes;
  return Memory(std::move(block));
}

void Device::Launch(const std::string& name,
                    const std::function<void()>& body) {
  instrument::WallTimer timer;
  body();
  KernelStats& stats = kernels_[name];
  ++stats.launches;
  stats.seconds += timer.Elapsed();
}

void Device::ResetStats() {
  transfers_ = {};
  kernels_.clear();
}

std::size_t Memory::Bytes() const {
  return block_ ? block_->storage.Bytes() : 0;
}

std::byte* Memory::DevicePtr() {
  if (!block_) throw std::runtime_error("occamini: null memory");
  return block_->storage.data();
}

const std::byte* Memory::DevicePtr() const {
  if (!block_) throw std::runtime_error("occamini: null memory");
  return block_->storage.data();
}

void Memory::CopyFrom(const void* host, std::size_t bytes,
                      std::size_t offset) {
  if (!block_) throw std::runtime_error("occamini: null memory");
  if (offset + bytes > block_->storage.Bytes()) {
    throw std::out_of_range("occamini: h2d copy out of range");
  }
  instrument::Span span("h2d.copy");
  instrument::WallTimer timer;
  std::memcpy(block_->storage.data() + offset, host, bytes);
  if (block_->device->backend_ == Backend::kSimGpu) {
    SimulateTransfer(block_->device->model_, bytes);
  }
  TransferStats& t = block_->device->transfers_;
  ++t.h2d_count;
  t.h2d_bytes += bytes;
  t.h2d_seconds += timer.Elapsed();
}

core::Buffer Memory::ToHost(const std::string& category) const {
  if (!block_) throw std::runtime_error("occamini: null memory");
  core::Buffer host(category, block_->storage.Bytes());
  CopyTo(host.data(), host.size());
  core::CountDeviceStage();
  return host;
}

void Memory::ToHostInto(core::Buffer& dest, const std::string& category) const {
  if (!block_) throw std::runtime_error("occamini: null memory");
  // Reuse only a uniquely-owned, exactly-sized block: a shared block may
  // still be adopted downstream (a renderer or writer holding last step's
  // view must never see this step's bytes), and a resized field needs a
  // fresh allocation anyway.
  if (dest.size() != block_->storage.Bytes() || dest.UseCount() != 1) {
    dest = ToHost(category);
    return;
  }
  CopyTo(dest.data(), dest.size());
  core::CountDeviceStage();
}

void Memory::CopyTo(void* host, std::size_t bytes, std::size_t offset) const {
  if (!block_) throw std::runtime_error("occamini: null memory");
  if (offset + bytes > block_->storage.Bytes()) {
    throw std::out_of_range("occamini: d2h copy out of range");
  }
  instrument::Span span("d2h.copy");
  instrument::WallTimer timer;
  std::memcpy(host, block_->storage.data() + offset, bytes);
  if (block_->device->backend_ == Backend::kSimGpu) {
    SimulateTransfer(block_->device->model_, bytes);
  }
  TransferStats& t = block_->device->transfers_;
  ++t.d2h_count;
  t.d2h_bytes += bytes;
  t.d2h_seconds += timer.Elapsed();
}

}  // namespace occamini
