// Software rasterization of svtk unstructured hex grids: the Catalyst/
// ParaView rendering stand-in.
//
// Every hex cell contributes its six quad faces (two triangles each) with
// per-vertex scalar colors mapped through a Colormap; a z-buffer resolves
// visibility, so the opaque outer surface (or a thresholded cell subset, as
// with ParaView's Threshold filter) is rendered correctly without needing
// global sorting.  Each rank rasterizes its own blocks; the compositor then
// merges framebuffers across ranks by depth (direct-send compositing).
#pragma once

#include <limits>
#include <optional>
#include <string>

#include "instrument/memory_tracker.hpp"
#include "render/camera.hpp"
#include "render/colormap.hpp"
#include "svtk/unstructured_grid.hpp"

namespace render {

/// RGB + depth framebuffer. Pixels are tracked under category "render".
class Framebuffer {
 public:
  Framebuffer(int width, int height);

  [[nodiscard]] int Width() const { return width_; }
  [[nodiscard]] int Height() const { return height_; }

  void Clear(Rgb background);

  [[nodiscard]] Rgb Pixel(int x, int y) const;
  [[nodiscard]] float Depth(int x, int y) const;
  void SetPixel(int x, int y, Rgb color, float depth);

  /// Raw planes, row-major, y = 0 at the top.
  [[nodiscard]] const instrument::TrackedBuffer<unsigned char>& Color() const {
    return color_;
  }
  [[nodiscard]] const instrument::TrackedBuffer<float>& DepthPlane() const {
    return depth_;
  }
  instrument::TrackedBuffer<unsigned char>& Color() { return color_; }
  instrument::TrackedBuffer<float>& DepthPlane() { return depth_; }

  static constexpr float kFarDepth = std::numeric_limits<float>::infinity();

 private:
  int width_;
  int height_;
  instrument::TrackedBuffer<unsigned char> color_;  // 3 bytes per pixel
  instrument::TrackedBuffer<float> depth_;
};

/// What to render and how to color it.
struct RenderSpec {
  std::string array;                  ///< field name to color by
  svtk::Centering centering = svtk::Centering::kPoint;
  bool color_by_magnitude = false;    ///< use |vector| for multi-component
  std::string colormap = "viridis";
  double range_min = 0.0;             ///< color range; min==max => auto
  double range_max = 0.0;
  /// Optional threshold: draw only cells whose (mean) scalar lies inside.
  std::optional<double> threshold_min;
  std::optional<double> threshold_max;
  /// Optional axis-aligned slice (ParaView Slice filter): draw only cells
  /// straddling the plane axis = position (0=x, 1=y, 2=z).
  std::optional<int> slice_axis;
  double slice_position = 0.0;
  Rgb background{20, 20, 30};
};

struct RasterStats {
  std::size_t cells_drawn = 0;
  std::size_t triangles_drawn = 0;
  std::size_t pixels_shaded = 0;
};

/// A projected vertex ready for rasterization.
struct ScreenVertex {
  double x = 0.0;
  double y = 0.0;
  double depth = 0.0;  ///< view-space depth for z-buffering
  double scalar = 0.0;
  bool visible = false;
};

/// Project a world-space point; `vp` and `view` come from the camera.
ScreenVertex ProjectPoint(const Mat4& vp, const Mat4& view, const Vec3& world,
                          int width, int height);

/// Rasterize one triangle with barycentric scalar interpolation; `shade`
/// multiplies the mapped color (1 = unshaded; isosurfaces pass a Lambert
/// factor).
void RasterizeShadedTriangle(const ScreenVertex& a, const ScreenVertex& b,
                             const ScreenVertex& c, const Colormap& cmap,
                             double lo, double hi, double shade,
                             Framebuffer& fb, RasterStats& stats);

/// Draw a vertical scalar bar (ParaView-style legend) along the right edge
/// of the framebuffer: the colormap gradient with tick marks at the bottom
/// (lo), middle, and top (hi). Drawn at zero depth so it overlays geometry.
void DrawScalarBar(const Colormap& cmap, double lo, double hi,
                   Framebuffer& fb);

/// Rasterize `grid` into `fb` (which must already be cleared / may contain
/// prior geometry). Returns drawing statistics.
RasterStats RasterizeGrid(const svtk::UnstructuredGrid& grid,
                          const RenderSpec& spec, const Camera& camera,
                          Framebuffer& fb);

}  // namespace render
