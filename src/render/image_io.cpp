#include "render/image_io.hpp"

#include <zlib.h>

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace render {

namespace {

// Big-endian u32 append.
void PutU32(std::vector<unsigned char>& out, std::uint32_t v) {
  out.push_back(static_cast<unsigned char>(v >> 24));
  out.push_back(static_cast<unsigned char>(v >> 16));
  out.push_back(static_cast<unsigned char>(v >> 8));
  out.push_back(static_cast<unsigned char>(v));
}

void PutChunk(std::vector<unsigned char>& out, const char type[4],
              const std::vector<unsigned char>& data) {
  PutU32(out, static_cast<std::uint32_t>(data.size()));
  const std::size_t crc_from = out.size();
  out.insert(out.end(), type, type + 4);
  out.insert(out.end(), data.begin(), data.end());
  const uLong crc =
      crc32(0L, out.data() + crc_from, static_cast<uInt>(4 + data.size()));
  PutU32(out, static_cast<std::uint32_t>(crc));
}

std::uint32_t GetU32(const unsigned char* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

}  // namespace

std::size_t WritePpm(const Framebuffer& fb, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("render: cannot open " + path);
  const std::string header = "P6\n" + std::to_string(fb.Width()) + " " +
                             std::to_string(fb.Height()) + "\n255\n";
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(reinterpret_cast<const char*>(fb.Color().data()),
            static_cast<std::streamsize>(fb.Color().size()));
  return header.size() + fb.Color().size();
}

std::size_t WritePng(const Framebuffer& fb, const std::string& path) {
  const auto width = static_cast<std::size_t>(fb.Width());
  const auto height = static_cast<std::size_t>(fb.Height());

  // Raw scanlines with a filter-type-0 byte prefixed to each row.
  std::vector<unsigned char> raw((3 * width + 1) * height);
  for (std::size_t y = 0; y < height; ++y) {
    unsigned char* row = raw.data() + y * (3 * width + 1);
    row[0] = 0;
    std::memcpy(row + 1, fb.Color().data() + y * 3 * width, 3 * width);
  }

  uLongf compressed_size = compressBound(static_cast<uLong>(raw.size()));
  std::vector<unsigned char> compressed(compressed_size);
  if (compress2(compressed.data(), &compressed_size, raw.data(),
                static_cast<uLong>(raw.size()), 6) != Z_OK) {
    throw std::runtime_error("render: zlib compression failed");
  }
  compressed.resize(compressed_size);

  std::vector<unsigned char> png = {0x89, 'P', 'N', 'G', '\r', '\n',
                                    0x1A, '\n'};
  std::vector<unsigned char> ihdr;
  PutU32(ihdr, static_cast<std::uint32_t>(width));
  PutU32(ihdr, static_cast<std::uint32_t>(height));
  ihdr.push_back(8);   // bit depth
  ihdr.push_back(2);   // color type: truecolor RGB
  ihdr.push_back(0);   // compression
  ihdr.push_back(0);   // filter method
  ihdr.push_back(0);   // no interlace
  PutChunk(png, "IHDR", ihdr);
  PutChunk(png, "IDAT", compressed);
  PutChunk(png, "IEND", {});

  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("render: cannot open " + path);
  out.write(reinterpret_cast<const char*>(png.data()),
            static_cast<std::streamsize>(png.size()));
  return png.size();
}

Framebuffer ReadPng(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("render: cannot open " + path);
  std::vector<unsigned char> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  static const unsigned char kSig[8] = {0x89, 'P', 'N', 'G',
                                        '\r', '\n', 0x1A, '\n'};
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kSig, 8) != 0) {
    throw std::runtime_error("render: not a PNG: " + path);
  }
  std::size_t pos = 8;
  std::uint32_t width = 0, height = 0;
  std::vector<unsigned char> idat;
  while (pos + 12 <= bytes.size()) {
    const std::uint32_t length = GetU32(bytes.data() + pos);
    const char* type = reinterpret_cast<const char*>(bytes.data() + pos + 4);
    const unsigned char* data = bytes.data() + pos + 8;
    if (std::memcmp(type, "IHDR", 4) == 0) {
      width = GetU32(data);
      height = GetU32(data + 4);
      if (data[8] != 8 || data[9] != 2) {
        throw std::runtime_error("render: unsupported PNG layout");
      }
    } else if (std::memcmp(type, "IDAT", 4) == 0) {
      idat.insert(idat.end(), data, data + length);
    } else if (std::memcmp(type, "IEND", 4) == 0) {
      break;
    }
    pos += 12 + length;
  }
  if (!width || !height) throw std::runtime_error("render: bad PNG header");

  std::vector<unsigned char> raw((3 * width + 1) * height);
  uLongf raw_size = static_cast<uLongf>(raw.size());
  if (uncompress(raw.data(), &raw_size, idat.data(),
                 static_cast<uLong>(idat.size())) != Z_OK ||
      raw_size != raw.size()) {
    throw std::runtime_error("render: PNG inflate failed");
  }
  Framebuffer fb(static_cast<int>(width), static_cast<int>(height));
  for (std::size_t y = 0; y < height; ++y) {
    const unsigned char* row = raw.data() + y * (3 * width + 1);
    if (row[0] != 0) {
      throw std::runtime_error("render: unsupported PNG filter");
    }
    std::memcpy(fb.Color().data() + y * 3 * width, row + 1, 3 * width);
  }
  return fb;
}

Framebuffer ReadPpm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("render: cannot open " + path);
  std::string magic;
  int width = 0, height = 0, maxval = 0;
  in >> magic >> width >> height >> maxval;
  if (magic != "P6" || maxval != 255 || width < 1 || height < 1) {
    throw std::runtime_error("render: not a P6 PPM: " + path);
  }
  in.get();  // single whitespace after header
  Framebuffer fb(width, height);
  in.read(reinterpret_cast<char*>(fb.Color().data()),
          static_cast<std::streamsize>(fb.Color().size()));
  if (!in) throw std::runtime_error("render: truncated PPM: " + path);
  return fb;
}

}  // namespace render
