#include "render/compositor.hpp"

#include <cstring>
#include <stdexcept>

namespace render {

namespace {
constexpr int kTagColor = 7101;
constexpr int kTagDepth = 7102;
}  // namespace

void CompositeToRoot(mpimini::Comm& comm, Framebuffer& fb, int root) {
  const std::size_t pixels =
      static_cast<std::size_t>(fb.Width()) * static_cast<std::size_t>(fb.Height());
  if (comm.Rank() != root) {
    comm.Send<unsigned char>(root, kTagColor,
                             {fb.Color().data(), fb.Color().size()});
    comm.Send<float>(root, kTagDepth,
                     {fb.DepthPlane().data(), fb.DepthPlane().size()});
    return;
  }
  for (int src = 0; src < comm.Size(); ++src) {
    if (src == root) continue;
    auto color = comm.Recv<unsigned char>(src, kTagColor);
    auto depth = comm.Recv<float>(src, kTagDepth);
    if (color.size() != 3 * pixels || depth.size() != pixels) {
      throw std::runtime_error("render: compositor framebuffer size mismatch");
    }
    for (std::size_t p = 0; p < pixels; ++p) {
      if (depth[p] < fb.DepthPlane()[p]) {
        fb.DepthPlane()[p] = depth[p];
        std::memcpy(fb.Color().data() + 3 * p, color.data() + 3 * p, 3);
      }
    }
  }
}

}  // namespace render
