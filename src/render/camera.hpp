// Minimal 3-D camera math for the software renderer: look-at view matrix,
// perspective projection, and a convenience auto-fit around a bounding box.
#pragma once

#include <array>
#include <cmath>

namespace render {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
};

inline double Dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}
inline Vec3 Cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}
inline double Length(const Vec3& v) { return std::sqrt(Dot(v, v)); }
inline Vec3 Normalized(const Vec3& v) {
  const double len = Length(v);
  return len > 0.0 ? v * (1.0 / len) : v;
}

/// Row-major 4x4 matrix.
struct Mat4 {
  std::array<double, 16> m{};

  static Mat4 Identity();
  Mat4 operator*(const Mat4& o) const;
};

/// Homogeneous transform of a point (w-divide applied).
struct Vec4 {
  double x = 0.0, y = 0.0, z = 0.0, w = 1.0;
};
Vec4 Transform(const Mat4& m, const Vec3& p);

/// Perspective camera.
struct Camera {
  Vec3 position{0.0, 0.0, 5.0};
  Vec3 target{0.0, 0.0, 0.0};
  Vec3 up{0.0, 0.0, 1.0};
  double fov_degrees = 40.0;
  double aspect = 4.0 / 3.0;
  double near_plane = 0.05;
  double far_plane = 100.0;

  [[nodiscard]] Mat4 ViewMatrix() const;
  [[nodiscard]] Mat4 ProjectionMatrix() const;
  [[nodiscard]] Mat4 ViewProjection() const {
    return ProjectionMatrix() * ViewMatrix();
  }
};

/// Place a camera looking at the centre of `bounds`
/// ({xmin,xmax,ymin,ymax,zmin,zmax}) from the given azimuth/elevation
/// (degrees, azimuth in the x-y plane from +x, elevation from the x-y
/// plane), backed off so the whole box is in view.
Camera FitCamera(const std::array<double, 6>& bounds, double azimuth_deg,
                 double elevation_deg, double aspect, double zoom = 1.0);

}  // namespace render
