// Isosurface extraction (marching tetrahedra) and shaded surface rendering
// — the ParaView Contour-filter role of the Catalyst stand-in.
//
// Each hex cell is decomposed into six tetrahedra; every tetrahedron whose
// point-centered field crosses the isovalue contributes one or two
// triangles with edge-interpolated positions.  A second point array can be
// interpolated along the same edges to color the surface (e.g. an isosurface
// of qcriterion colored by velocity magnitude, the classic turbulence shot).
#pragma once

#include <string>
#include <vector>

#include "render/camera.hpp"
#include "render/rasterizer.hpp"
#include "svtk/unstructured_grid.hpp"

namespace render {

/// Triangle soup with a scalar value per vertex (for coloring).
struct TriangleMesh {
  std::vector<Vec3> positions;   ///< 3 consecutive entries per triangle
  std::vector<double> scalars;   ///< one per vertex
  std::vector<Vec3> normals;     ///< one per triangle (unit, gradient sense)

  [[nodiscard]] std::size_t NumTriangles() const {
    return positions.size() / 3;
  }
};

/// Extract the isosurface of point array `iso_array` at `isovalue`.
/// Vertex scalars are interpolated from `color_array` (must be point
/// centered; pass the same name to color by the iso field itself). When
/// `color_by_magnitude` is set and the color array has several components,
/// its Euclidean magnitude is used.
TriangleMesh ExtractIsosurface(const svtk::UnstructuredGrid& grid,
                               const std::string& iso_array, double isovalue,
                               const std::string& color_array,
                               bool color_by_magnitude = false);

/// Rasterize a triangle mesh with Lambert shading from a headlight at the
/// camera. Colors come from mapping vertex scalars through `colormap` over
/// [lo, hi].
RasterStats RasterizeTriangleMesh(const TriangleMesh& mesh,
                                  const std::string& colormap, double lo,
                                  double hi, const Camera& camera,
                                  Framebuffer& fb);

}  // namespace render
