#include "render/isosurface.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace render {

namespace {

// Six-tetrahedra decomposition of a VTK hexahedron around the 0-6 diagonal.
constexpr int kHexTets[6][4] = {{0, 1, 2, 6}, {0, 2, 3, 6}, {0, 3, 7, 6},
                                {0, 7, 4, 6}, {0, 4, 5, 6}, {0, 5, 1, 6}};

struct EdgeVertex {
  Vec3 position;
  double scalar;
};

EdgeVertex Interpolate(const Vec3& pa, const Vec3& pb, double va, double vb,
                       double ca, double cb, double iso) {
  const double denom = vb - va;
  const double t = std::abs(denom) < 1e-300 ? 0.5 : (iso - va) / denom;
  EdgeVertex out;
  out.position = pa + (pb - pa) * t;
  out.scalar = ca + (cb - ca) * t;
  return out;
}

void EmitTriangle(TriangleMesh& mesh, const EdgeVertex& a, const EdgeVertex& b,
                  const EdgeVertex& c) {
  // Degenerate slivers appear when the isovalue passes exactly through grid
  // nodes; they contribute no area and would have undefined normals.
  const Vec3 cross = Cross(b.position - a.position, c.position - a.position);
  if (Length(cross) < 1e-14) return;
  mesh.positions.push_back(a.position);
  mesh.positions.push_back(b.position);
  mesh.positions.push_back(c.position);
  mesh.scalars.push_back(a.scalar);
  mesh.scalars.push_back(b.scalar);
  mesh.scalars.push_back(c.scalar);
  mesh.normals.push_back(Normalized(cross));
}

}  // namespace

TriangleMesh ExtractIsosurface(const svtk::UnstructuredGrid& grid,
                               const std::string& iso_array, double isovalue,
                               const std::string& color_array,
                               bool color_by_magnitude) {
  const svtk::DataArray* iso = grid.PointArray(iso_array);
  if (!iso) {
    throw std::invalid_argument("render: no point array '" + iso_array + "'");
  }
  const svtk::DataArray* color = grid.PointArray(color_array);
  if (!color) {
    throw std::invalid_argument("render: no point array '" + color_array +
                                "'");
  }
  const bool mag = color_by_magnitude && color->Components() > 1;
  auto color_of = [&](std::size_t p) {
    return mag ? color->Magnitude(p) : color->At(p);
  };
  auto iso_of = [&](std::size_t p) { return iso->At(p); };

  TriangleMesh mesh;
  const std::size_t nc = grid.NumCells();
  for (std::size_t cell = 0; cell < nc; ++cell) {
    const auto nodes = grid.GetCell(cell);
    for (const auto& tet : kHexTets) {
      std::array<std::size_t, 4> p{};
      std::array<Vec3, 4> pos;
      std::array<double, 4> v{}, c{};
      int above_mask = 0;
      for (int i = 0; i < 4; ++i) {
        p[static_cast<std::size_t>(i)] =
            static_cast<std::size_t>(nodes[tet[i]]);
        const auto xyz = grid.GetPoint(p[static_cast<std::size_t>(i)]);
        pos[static_cast<std::size_t>(i)] = {xyz[0], xyz[1], xyz[2]};
        v[static_cast<std::size_t>(i)] = iso_of(p[static_cast<std::size_t>(i)]);
        c[static_cast<std::size_t>(i)] =
            color_of(p[static_cast<std::size_t>(i)]);
        if (v[static_cast<std::size_t>(i)] >= isovalue) above_mask |= 1 << i;
      }
      if (above_mask == 0 || above_mask == 0xF) continue;

      auto edge = [&](int a, int b) {
        return Interpolate(pos[static_cast<std::size_t>(a)],
                           pos[static_cast<std::size_t>(b)],
                           v[static_cast<std::size_t>(a)],
                           v[static_cast<std::size_t>(b)],
                           c[static_cast<std::size_t>(a)],
                           c[static_cast<std::size_t>(b)], isovalue);
      };

      // Count vertices above the isovalue.
      int above[4], below[4];
      int na = 0, nb = 0;
      for (int i = 0; i < 4; ++i) {
        if (above_mask & (1 << i)) {
          above[na++] = i;
        } else {
          below[nb++] = i;
        }
      }
      if (na == 1) {
        EmitTriangle(mesh, edge(above[0], below[0]), edge(above[0], below[1]),
                     edge(above[0], below[2]));
      } else if (na == 3) {
        EmitTriangle(mesh, edge(below[0], above[0]), edge(below[0], above[1]),
                     edge(below[0], above[2]));
      } else {  // 2-2: a quad split into two triangles
        const EdgeVertex q0 = edge(above[0], below[0]);
        const EdgeVertex q1 = edge(above[0], below[1]);
        const EdgeVertex q2 = edge(above[1], below[1]);
        const EdgeVertex q3 = edge(above[1], below[0]);
        EmitTriangle(mesh, q0, q1, q2);
        EmitTriangle(mesh, q0, q2, q3);
      }
    }
  }
  return mesh;
}

RasterStats RasterizeTriangleMesh(const TriangleMesh& mesh,
                                  const std::string& colormap, double lo,
                                  double hi, const Camera& camera,
                                  Framebuffer& fb) {
  RasterStats stats;
  const Colormap& cmap = GetColormap(colormap);
  const Mat4 vp = camera.ViewProjection();
  const Mat4 view = camera.ViewMatrix();
  const Vec3 light = Normalized(camera.target - camera.position);

  for (std::size_t t = 0; t < mesh.NumTriangles(); ++t) {
    ScreenVertex sv[3];
    for (int k = 0; k < 3; ++k) {
      const Vec3& p = mesh.positions[3 * t + static_cast<std::size_t>(k)];
      sv[k] = ProjectPoint(vp, view, p, fb.Width(), fb.Height());
      sv[k].scalar = mesh.scalars[3 * t + static_cast<std::size_t>(k)];
    }
    // Headlight Lambert shading, double-sided.
    const double lambert = std::abs(Dot(mesh.normals[t], light));
    const double shade = 0.25 + 0.75 * lambert;
    RasterizeShadedTriangle(sv[0], sv[1], sv[2], cmap, lo, hi, shade, fb,
                            stats);
  }
  stats.cells_drawn = mesh.NumTriangles();
  return stats;
}

}  // namespace render
