#include "render/camera.hpp"

#include <numbers>

namespace render {

Mat4 Mat4::Identity() {
  Mat4 out;
  out.m[0] = out.m[5] = out.m[10] = out.m[15] = 1.0;
  return out;
}

Mat4 Mat4::operator*(const Mat4& o) const {
  Mat4 out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      double sum = 0.0;
      for (int k = 0; k < 4; ++k) {
        sum += m[static_cast<std::size_t>(4 * r + k)] *
               o.m[static_cast<std::size_t>(4 * k + c)];
      }
      out.m[static_cast<std::size_t>(4 * r + c)] = sum;
    }
  }
  return out;
}

Vec4 Transform(const Mat4& m, const Vec3& p) {
  Vec4 out;
  out.x = m.m[0] * p.x + m.m[1] * p.y + m.m[2] * p.z + m.m[3];
  out.y = m.m[4] * p.x + m.m[5] * p.y + m.m[6] * p.z + m.m[7];
  out.z = m.m[8] * p.x + m.m[9] * p.y + m.m[10] * p.z + m.m[11];
  out.w = m.m[12] * p.x + m.m[13] * p.y + m.m[14] * p.z + m.m[15];
  return out;
}

Mat4 Camera::ViewMatrix() const {
  const Vec3 f = Normalized(target - position);   // forward
  const Vec3 s = Normalized(Cross(f, up));        // right
  const Vec3 u = Cross(s, f);                     // true up
  Mat4 out = Mat4::Identity();
  out.m[0] = s.x;
  out.m[1] = s.y;
  out.m[2] = s.z;
  out.m[3] = -Dot(s, position);
  out.m[4] = u.x;
  out.m[5] = u.y;
  out.m[6] = u.z;
  out.m[7] = -Dot(u, position);
  out.m[8] = -f.x;
  out.m[9] = -f.y;
  out.m[10] = -f.z;
  out.m[11] = Dot(f, position);
  return out;
}

Mat4 Camera::ProjectionMatrix() const {
  const double rad = fov_degrees * std::numbers::pi / 180.0;
  const double t = 1.0 / std::tan(0.5 * rad);
  Mat4 out;
  out.m[0] = t / aspect;
  out.m[5] = t;
  out.m[10] = -(far_plane + near_plane) / (far_plane - near_plane);
  out.m[11] = -2.0 * far_plane * near_plane / (far_plane - near_plane);
  out.m[14] = -1.0;
  return out;
}

Camera FitCamera(const std::array<double, 6>& bounds, double azimuth_deg,
                 double elevation_deg, double aspect, double zoom) {
  using std::numbers::pi;
  Camera camera;
  camera.aspect = aspect;
  camera.target = {0.5 * (bounds[0] + bounds[1]),
                   0.5 * (bounds[2] + bounds[3]),
                   0.5 * (bounds[4] + bounds[5])};
  const double dx = bounds[1] - bounds[0];
  const double dy = bounds[3] - bounds[2];
  const double dz = bounds[5] - bounds[4];
  const double diag = std::sqrt(dx * dx + dy * dy + dz * dz);
  const double distance =
      (diag > 0.0 ? diag : 1.0) * 1.6 / (zoom > 0.0 ? zoom : 1.0);
  const double az = azimuth_deg * pi / 180.0;
  const double el = elevation_deg * pi / 180.0;
  const Vec3 dir{std::cos(el) * std::cos(az), std::cos(el) * std::sin(az),
                 std::sin(el)};
  camera.position = camera.target + dir * distance;
  camera.near_plane = 0.01 * distance;
  camera.far_plane = 10.0 * distance;
  return camera;
}

}  // namespace render
