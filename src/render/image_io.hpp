// Image file output for rendered frames.
//
// Two formats: raw binary PPM and zlib-compressed PNG.  Catalyst/ParaView
// pipelines write PNGs, and the paper's storage-economy comparison (6.5 MB
// of images vs 19 GB of checkpoints) depends on images being compressed, so
// PNG is the default for the Catalyst adaptor; the byte counts returned
// here are real on-disk sizes.
#pragma once

#include <cstddef>
#include <string>

#include "render/rasterizer.hpp"

namespace render {

/// Write the framebuffer's color plane as a binary P6 PPM. Returns the
/// number of bytes written.
std::size_t WritePpm(const Framebuffer& fb, const std::string& path);

/// Read back a P6 PPM written by WritePpm (test support).
Framebuffer ReadPpm(const std::string& path);

/// Write the framebuffer as an 8-bit RGB PNG (zlib-deflated, filter 0).
/// Returns the number of bytes written.
std::size_t WritePng(const Framebuffer& fb, const std::string& path);

/// Read back a PNG written by WritePng (test support; handles only the
/// subset this library writes).
Framebuffer ReadPng(const std::string& path);

}  // namespace render
