#include "render/colormap.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace render {

Colormap::Colormap(std::vector<std::array<double, 3>> control_points)
    : points_(std::move(control_points)) {
  if (points_.size() < 2) {
    throw std::invalid_argument("render: colormap needs >= 2 control points");
  }
}

Rgb Colormap::Sample(double t) const {
  t = std::clamp(t, 0.0, 1.0);
  const double scaled = t * static_cast<double>(points_.size() - 1);
  const auto lo = static_cast<std::size_t>(scaled);
  const std::size_t hi = std::min(lo + 1, points_.size() - 1);
  const double f = scaled - static_cast<double>(lo);
  Rgb out;
  auto mix = [&](int c) {
    const double v = points_[lo][static_cast<std::size_t>(c)] * (1.0 - f) +
                     points_[hi][static_cast<std::size_t>(c)] * f;
    return static_cast<unsigned char>(std::lround(255.0 * std::clamp(v, 0.0, 1.0)));
  };
  out.r = mix(0);
  out.g = mix(1);
  out.b = mix(2);
  return out;
}

Rgb Colormap::Map(double value, double lo, double hi) const {
  if (hi <= lo) return Sample(0.5);
  return Sample((value - lo) / (hi - lo));
}

const Colormap& GetColormap(const std::string& name) {
  static const std::map<std::string, Colormap> maps = [] {
    std::map<std::string, Colormap> m;
    m.emplace("viridis",
              Colormap({{0.267, 0.005, 0.329},
                        {0.283, 0.141, 0.458},
                        {0.254, 0.265, 0.530},
                        {0.207, 0.372, 0.553},
                        {0.164, 0.471, 0.558},
                        {0.128, 0.567, 0.551},
                        {0.135, 0.659, 0.518},
                        {0.267, 0.749, 0.441},
                        {0.478, 0.821, 0.318},
                        {0.741, 0.873, 0.150},
                        {0.993, 0.906, 0.144}}));
    m.emplace("coolwarm",
              Colormap({{0.230, 0.299, 0.754},
                        {0.552, 0.690, 0.996},
                        {0.865, 0.865, 0.865},
                        {0.958, 0.603, 0.482},
                        {0.706, 0.016, 0.150}}));
    m.emplace("plasma",
              Colormap({{0.050, 0.030, 0.528},
                        {0.418, 0.001, 0.658},
                        {0.693, 0.165, 0.564},
                        {0.882, 0.392, 0.383},
                        {0.988, 0.652, 0.211},
                        {0.940, 0.975, 0.131}}));
    m.emplace("grayscale", Colormap({{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}}));
    return m;
  }();
  auto it = maps.find(name);
  if (it == maps.end()) {
    throw std::invalid_argument("render: unknown colormap '" + name + "'");
  }
  return it->second;
}

}  // namespace render
