// Parallel depth compositing: merge per-rank framebuffers into one image on
// a root rank (direct-send compositing, the role IceT plays for ParaView).
//
// Each rank rasterizes its local blocks into a private framebuffer; the
// compositor gathers (color, depth) planes and keeps, per pixel, the sample
// nearest to the camera.  Background pixels carry infinite depth, so they
// lose against any geometry.
#pragma once

#include "mpimini/comm.hpp"
#include "render/rasterizer.hpp"

namespace render {

/// Collective over `comm`: depth-composite everyone's framebuffer into the
/// root rank's. Non-root framebuffers are left unchanged. All framebuffers
/// must have identical dimensions.
void CompositeToRoot(mpimini::Comm& comm, Framebuffer& fb, int root = 0);

}  // namespace render
