// Scalar-to-color mapping for pseudocolor rendering (the ParaView/OSPRay
// stand-in's transfer functions).
#pragma once

#include <array>
#include <string>
#include <vector>

namespace render {

/// 8-bit RGB color.
struct Rgb {
  unsigned char r = 0;
  unsigned char g = 0;
  unsigned char b = 0;

  friend bool operator==(const Rgb&, const Rgb&) = default;
};

/// Piecewise-linear colormap over [0,1].
class Colormap {
 public:
  /// Control points must be >= 2, evenly spaced over [0,1].
  explicit Colormap(std::vector<std::array<double, 3>> control_points);

  /// Map t in [0,1] (clamped) to a color.
  [[nodiscard]] Rgb Sample(double t) const;

  /// Map a value within [lo,hi] (degenerate ranges map to the midpoint).
  [[nodiscard]] Rgb Map(double value, double lo, double hi) const;

 private:
  std::vector<std::array<double, 3>> points_;
};

/// Built-in maps: "viridis", "coolwarm", "plasma", "grayscale".
/// Throws std::invalid_argument for unknown names.
const Colormap& GetColormap(const std::string& name);

}  // namespace render
