#include "render/rasterizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace render {

Framebuffer::Framebuffer(int width, int height)
    : width_(width),
      height_(height),
      color_("render", static_cast<std::size_t>(width) * height * 3),
      depth_("render", static_cast<std::size_t>(width) * height) {
  if (width < 1 || height < 1) {
    throw std::invalid_argument("render: framebuffer size must be positive");
  }
  Clear(Rgb{0, 0, 0});
}

void Framebuffer::Clear(Rgb background) {
  for (std::size_t p = 0; p < depth_.size(); ++p) {
    color_[3 * p + 0] = background.r;
    color_[3 * p + 1] = background.g;
    color_[3 * p + 2] = background.b;
    depth_[p] = kFarDepth;
  }
}

Rgb Framebuffer::Pixel(int x, int y) const {
  const std::size_t p =
      static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
      static_cast<std::size_t>(x);
  return {color_[3 * p + 0], color_[3 * p + 1], color_[3 * p + 2]};
}

float Framebuffer::Depth(int x, int y) const {
  return depth_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                static_cast<std::size_t>(x)];
}

void Framebuffer::SetPixel(int x, int y, Rgb color, float depth) {
  const std::size_t p =
      static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
      static_cast<std::size_t>(x);
  color_[3 * p + 0] = color.r;
  color_[3 * p + 1] = color.g;
  color_[3 * p + 2] = color.b;
  depth_[p] = depth;
}

namespace {

// The six faces of a VTK hexahedron (quad corner indices into the cell's
// 8 nodes), each wound outward.
constexpr int kHexFaces[6][4] = {{0, 3, 2, 1}, {4, 5, 6, 7}, {0, 1, 5, 4},
                                 {1, 2, 6, 5}, {2, 3, 7, 6}, {3, 0, 4, 7}};

}  // namespace

ScreenVertex ProjectPoint(const Mat4& vp, const Mat4& view, const Vec3& world,
                          int width, int height) {
  ScreenVertex v;
  const Vec4 clip = Transform(vp, world);
  if (clip.w <= 0.0) {
    v.visible = false;
    return v;
  }
  v.x = (clip.x / clip.w * 0.5 + 0.5) * width;
  v.y = (1.0 - (clip.y / clip.w * 0.5 + 0.5)) * height;
  const Vec4 eye = Transform(view, world);
  v.depth = -eye.z;  // distance along the view axis
  v.visible = v.depth > 0.0;
  return v;
}

void RasterizeShadedTriangle(const ScreenVertex& a, const ScreenVertex& b,
                             const ScreenVertex& c, const Colormap& cmap,
                             double lo, double hi, double shade,
                             Framebuffer& fb, RasterStats& stats) {
  if (!a.visible || !b.visible || !c.visible) return;
  const double area =
      (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y);
  if (std::abs(area) < 1e-12) return;

  const int min_x = std::max(0, static_cast<int>(std::floor(
                                    std::min({a.x, b.x, c.x}))));
  const int max_x = std::min(fb.Width() - 1, static_cast<int>(std::ceil(
                                                 std::max({a.x, b.x, c.x}))));
  const int min_y = std::max(0, static_cast<int>(std::floor(
                                    std::min({a.y, b.y, c.y}))));
  const int max_y = std::min(fb.Height() - 1, static_cast<int>(std::ceil(
                                                  std::max({a.y, b.y, c.y}))));
  if (min_x > max_x || min_y > max_y) return;

  bool drew = false;
  const double inv_area = 1.0 / area;
  for (int y = min_y; y <= max_y; ++y) {
    for (int x = min_x; x <= max_x; ++x) {
      const double px = x + 0.5;
      const double py = y + 0.5;
      const double w0 = ((b.x - px) * (c.y - py) - (c.x - px) * (b.y - py)) *
                        inv_area;
      const double w1 = ((c.x - px) * (a.y - py) - (a.x - px) * (c.y - py)) *
                        inv_area;
      const double w2 = 1.0 - w0 - w1;
      if (w0 < 0.0 || w1 < 0.0 || w2 < 0.0) continue;
      const double depth = w0 * a.depth + w1 * b.depth + w2 * c.depth;
      if (depth <= 0.0) continue;
      const auto fdepth = static_cast<float>(depth);
      if (fdepth >= fb.Depth(x, y)) continue;
      const double scalar = w0 * a.scalar + w1 * b.scalar + w2 * c.scalar;
      Rgb color = cmap.Map(scalar, lo, hi);
      if (shade != 1.0) {
        color.r = static_cast<unsigned char>(color.r * shade);
        color.g = static_cast<unsigned char>(color.g * shade);
        color.b = static_cast<unsigned char>(color.b * shade);
      }
      fb.SetPixel(x, y, color, fdepth);
      ++stats.pixels_shaded;
      drew = true;
    }
  }
  if (drew) ++stats.triangles_drawn;
}

void DrawScalarBar(const Colormap& cmap, double lo, double hi,
                   Framebuffer& fb) {
  (void)lo;
  (void)hi;
  const int bar_width = std::max(6, fb.Width() / 60);
  const int margin = bar_width;
  const int top = fb.Height() / 10;
  const int bottom = fb.Height() - top;
  const int x0 = fb.Width() - margin - bar_width;
  if (x0 < 0 || bottom <= top) return;
  for (int y = top; y < bottom; ++y) {
    const double t =
        1.0 - static_cast<double>(y - top) / static_cast<double>(bottom - top);
    const Rgb color = cmap.Sample(t);
    for (int x = x0; x < x0 + bar_width; ++x) {
      fb.SetPixel(x, y, color, 0.0F);
    }
  }
  // White tick marks at lo / mid / hi.
  for (int yt : {top, (top + bottom) / 2, bottom - 1}) {
    for (int x = x0 - bar_width / 2; x < x0; ++x) {
      fb.SetPixel(x, yt, {255, 255, 255}, 0.0F);
    }
  }
}

RasterStats RasterizeGrid(const svtk::UnstructuredGrid& grid,
                          const RenderSpec& spec, const Camera& camera,
                          Framebuffer& fb) {
  RasterStats stats;
  const svtk::DataArray* array =
      spec.centering == svtk::Centering::kPoint
          ? grid.PointArray(spec.array)
          : grid.CellArray(spec.array);
  if (!array) {
    throw std::invalid_argument("render: no such array '" + spec.array + "'");
  }

  const bool magnitude = spec.color_by_magnitude && array->Components() > 1;
  auto scalar_of = [&](std::size_t tuple) {
    return magnitude ? array->Magnitude(tuple) : array->At(tuple);
  };

  double lo = spec.range_min;
  double hi = spec.range_max;
  if (lo == hi) {
    const auto range = array->ValueRange(magnitude);
    lo = range.min;
    hi = range.max;
  }
  const Colormap& cmap = GetColormap(spec.colormap);

  // Project all points once.
  const Mat4 vp = camera.ViewProjection();
  const Mat4 view = camera.ViewMatrix();
  const std::size_t np = grid.NumPoints();
  std::vector<ScreenVertex> projected(np);
  for (std::size_t i = 0; i < np; ++i) {
    const auto p = grid.GetPoint(i);
    projected[i] = ProjectPoint(vp, view, {p[0], p[1], p[2]}, fb.Width(),
                                fb.Height());
    if (spec.centering == svtk::Centering::kPoint) {
      projected[i].scalar = scalar_of(i);
    }
  }

  const std::size_t nc = grid.NumCells();
  for (std::size_t cell = 0; cell < nc; ++cell) {
    if (spec.slice_axis) {
      // Keep only cells straddling the slice plane.
      const auto nodes = grid.GetCell(cell);
      double lo_c = 0.0, hi_c = 0.0;
      for (int k = 0; k < 8; ++k) {
        const auto p = grid.GetPoint(static_cast<std::size_t>(nodes[k]));
        const double v = p[static_cast<std::size_t>(*spec.slice_axis)];
        if (k == 0) {
          lo_c = hi_c = v;
        } else {
          lo_c = std::min(lo_c, v);
          hi_c = std::max(hi_c, v);
        }
      }
      if (spec.slice_position < lo_c || spec.slice_position > hi_c) continue;
    }
    double cell_scalar = 0.0;
    if (spec.centering == svtk::Centering::kCell) {
      cell_scalar = scalar_of(cell);
    }
    if (spec.threshold_min || spec.threshold_max) {
      double probe = cell_scalar;
      if (spec.centering == svtk::Centering::kPoint) {
        const auto nodes = grid.GetCell(cell);
        probe = 0.0;
        for (std::int64_t nid : nodes) {
          probe += scalar_of(static_cast<std::size_t>(nid));
        }
        probe /= 8.0;
      }
      if (spec.threshold_min && probe < *spec.threshold_min) continue;
      if (spec.threshold_max && probe > *spec.threshold_max) continue;
    }

    const auto nodes = grid.GetCell(cell);
    bool drew_cell = false;
    for (const auto& face : kHexFaces) {
      ScreenVertex corners[4];
      for (int k = 0; k < 4; ++k) {
        corners[k] = projected[static_cast<std::size_t>(nodes[face[k]])];
        if (spec.centering == svtk::Centering::kCell) {
          corners[k].scalar = cell_scalar;
        }
      }
      const std::size_t before = stats.triangles_drawn;
      RasterizeShadedTriangle(corners[0], corners[1], corners[2], cmap, lo,
                              hi, 1.0, fb, stats);
      RasterizeShadedTriangle(corners[0], corners[2], corners[3], cmap, lo,
                              hi, 1.0, fb, stats);
      drew_cell = drew_cell || stats.triangles_drawn != before;
    }
    if (drew_cell) ++stats.cells_drawn;
  }
  return stats;
}

}  // namespace render
