// Minimal non-validating XML DOM, sufficient for SENSEI-style runtime
// configuration files:
//
//   <sensei>
//     <analysis type="catalyst" frequency="100" ... />
//   </sensei>
//
// Supports elements, attributes (single or double quoted), nested children,
// text content, comments, an optional XML declaration, and the five
// predefined entities.  Parse errors throw xmlcfg::ParseError with a line
// number.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace xmlcfg {

/// Thrown on malformed input; message includes a 1-based line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line)
      : std::runtime_error("XML parse error at line " + std::to_string(line) +
                           ": " + message),
        line_(line) {}

  [[nodiscard]] int Line() const { return line_; }

 private:
  int line_;
};

/// One XML element: tag name, attributes, child elements, and the
/// concatenated text content directly inside it.
class Element {
 public:
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<Element> children;
  std::string text;

  /// Attribute value or `fallback` when absent.
  [[nodiscard]] std::string Attr(const std::string& key,
                                 const std::string& fallback = "") const;

  /// Attribute parsed as integer; `fallback` when absent. Throws
  /// std::invalid_argument if present but not an integer.
  [[nodiscard]] long AttrInt(const std::string& key, long fallback = 0) const;

  /// Attribute parsed as double; `fallback` when absent.
  [[nodiscard]] double AttrDouble(const std::string& key,
                                  double fallback = 0.0) const;

  [[nodiscard]] bool HasAttr(const std::string& key) const {
    return attributes.count(key) != 0;
  }

  /// First child with the given tag name, or nullptr.
  [[nodiscard]] const Element* FindChild(std::string_view tag) const;

  /// All children with the given tag name, in document order.
  [[nodiscard]] std::vector<const Element*> FindAll(std::string_view tag) const;
};

/// A parsed document; `root` is the single top-level element.
struct Document {
  Element root;
};

/// Parse an XML document from a string.
Document Parse(std::string_view input);

/// Parse the file at `path`; throws std::runtime_error if unreadable.
Document ParseFile(const std::string& path);

/// Serialize an element tree back to indented XML text (used by round-trip
/// tests and for writing generated configurations).
std::string Serialize(const Element& element);

}  // namespace xmlcfg
