#include "xmlcfg/xml.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace xmlcfg {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Document Run() {
    SkipProlog();
    Document doc;
    doc.root = ParseElement();
    SkipMisc();
    if (!AtEnd()) Fail("trailing content after root element");
    return doc;
  }

 private:
  [[nodiscard]] bool AtEnd() const { return pos_ >= input_.size(); }

  [[nodiscard]] char Peek() const { return input_[pos_]; }

  char Take() {
    char c = input_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  [[nodiscard]] bool StartsWith(std::string_view prefix) const {
    return input_.substr(pos_, prefix.size()) == prefix;
  }

  void Expect(std::string_view prefix) {
    if (!StartsWith(prefix)) {
      Fail("expected '" + std::string(prefix) + "'");
    }
    for (std::size_t i = 0; i < prefix.size(); ++i) Take();
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError(message, line_);
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Take();
    }
  }

  void SkipComment() {
    Expect("<!--");
    while (!AtEnd()) {
      if (StartsWith("-->")) {
        Expect("-->");
        return;
      }
      Take();
    }
    Fail("unterminated comment");
  }

  // XML declaration, comments, whitespace before/after the root.
  void SkipProlog() {
    SkipWhitespace();
    if (StartsWith("<?xml")) {
      while (!AtEnd() && !StartsWith("?>")) Take();
      if (AtEnd()) Fail("unterminated XML declaration");
      Expect("?>");
    }
    SkipMisc();
  }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (StartsWith("<!--")) {
        SkipComment();
      } else {
        return;
      }
    }
  }

  [[nodiscard]] static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  std::string ParseName() {
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) name += Take();
    if (name.empty()) Fail("expected a name");
    return name;
  }

  std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      auto end = raw.find(';', i);
      if (end == std::string_view::npos) Fail("unterminated entity");
      std::string_view entity = raw.substr(i + 1, end - i - 1);
      if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "amp") {
        out += '&';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else {
        Fail("unknown entity '&" + std::string(entity) + ";'");
      }
      i = end;
    }
    return out;
  }

  std::string ParseAttrValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      Fail("expected quoted attribute value");
    }
    const char quote = Take();
    std::string raw;
    while (!AtEnd() && Peek() != quote) raw += Take();
    if (AtEnd()) Fail("unterminated attribute value");
    Take();  // closing quote
    return DecodeEntities(raw);
  }

  Element ParseElement() {
    Expect("<");
    Element element;
    element.name = ParseName();
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) Fail("unterminated start tag");
      if (StartsWith("/>")) {
        Expect("/>");
        return element;
      }
      if (Peek() == '>') {
        Take();
        ParseContent(element);
        return element;
      }
      std::string key = ParseName();
      SkipWhitespace();
      Expect("=");
      SkipWhitespace();
      if (element.attributes.count(key)) {
        Fail("duplicate attribute '" + key + "'");
      }
      element.attributes[key] = ParseAttrValue();
    }
  }

  void ParseContent(Element& element) {
    std::string text;
    for (;;) {
      if (AtEnd()) Fail("unterminated element <" + element.name + ">");
      if (StartsWith("<!--")) {
        SkipComment();
      } else if (StartsWith("</")) {
        Expect("</");
        std::string closing = ParseName();
        if (closing != element.name) {
          Fail("mismatched closing tag </" + closing + "> for <" +
               element.name + ">");
        }
        SkipWhitespace();
        Expect(">");
        element.text = DecodeEntities(Trim(text));
        return;
      } else if (Peek() == '<') {
        element.children.push_back(ParseElement());
      } else {
        text += Take();
      }
    }
  }

  static std::string Trim(const std::string& s) {
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
      ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1]))) {
      --end;
    }
    return s.substr(begin, end - begin);
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

std::string EncodeEntities(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

void SerializeTo(const Element& element, std::ostream& os, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  os << indent << '<' << element.name;
  for (const auto& [key, value] : element.attributes) {
    os << ' ' << key << "=\"" << EncodeEntities(value) << '"';
  }
  if (element.children.empty() && element.text.empty()) {
    os << "/>\n";
    return;
  }
  os << '>';
  if (!element.text.empty()) os << EncodeEntities(element.text);
  if (!element.children.empty()) {
    os << '\n';
    for (const Element& child : element.children) {
      SerializeTo(child, os, depth + 1);
    }
    os << indent;
  }
  os << "</" << element.name << ">\n";
}

}  // namespace

std::string Element::Attr(const std::string& key,
                          const std::string& fallback) const {
  auto it = attributes.find(key);
  return it == attributes.end() ? fallback : it->second;
}

long Element::AttrInt(const std::string& key, long fallback) const {
  auto it = attributes.find(key);
  if (it == attributes.end()) return fallback;
  std::size_t consumed = 0;
  long value = std::stol(it->second, &consumed);
  if (consumed != it->second.size()) {
    throw std::invalid_argument("attribute '" + key + "' is not an integer: " +
                                it->second);
  }
  return value;
}

double Element::AttrDouble(const std::string& key, double fallback) const {
  auto it = attributes.find(key);
  if (it == attributes.end()) return fallback;
  std::size_t consumed = 0;
  double value = std::stod(it->second, &consumed);
  if (consumed != it->second.size()) {
    throw std::invalid_argument("attribute '" + key + "' is not a number: " +
                                it->second);
  }
  return value;
}

const Element* Element::FindChild(std::string_view tag) const {
  for (const Element& child : children) {
    if (child.name == tag) return &child;
  }
  return nullptr;
}

std::vector<const Element*> Element::FindAll(std::string_view tag) const {
  std::vector<const Element*> out;
  for (const Element& child : children) {
    if (child.name == tag) out.push_back(&child);
  }
  return out;
}

Document Parse(std::string_view input) { return Parser(input).Run(); }

Document ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open XML file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

std::string Serialize(const Element& element) {
  std::ostringstream os;
  SerializeTo(element, os, 0);
  return os.str();
}

}  // namespace xmlcfg
