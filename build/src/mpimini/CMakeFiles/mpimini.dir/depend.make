# Empty dependencies file for mpimini.
# This may be replaced when dependencies are built.
