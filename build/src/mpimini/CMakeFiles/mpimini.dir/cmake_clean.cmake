file(REMOVE_RECURSE
  "CMakeFiles/mpimini.dir/comm.cpp.o"
  "CMakeFiles/mpimini.dir/comm.cpp.o.d"
  "CMakeFiles/mpimini.dir/runtime.cpp.o"
  "CMakeFiles/mpimini.dir/runtime.cpp.o.d"
  "libmpimini.a"
  "libmpimini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpimini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
