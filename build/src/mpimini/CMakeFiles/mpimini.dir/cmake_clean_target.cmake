file(REMOVE_RECURSE
  "libmpimini.a"
)
