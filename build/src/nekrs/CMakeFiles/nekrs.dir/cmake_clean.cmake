file(REMOVE_RECURSE
  "CMakeFiles/nekrs.dir/cases.cpp.o"
  "CMakeFiles/nekrs.dir/cases.cpp.o.d"
  "CMakeFiles/nekrs.dir/flow_solver.cpp.o"
  "CMakeFiles/nekrs.dir/flow_solver.cpp.o.d"
  "CMakeFiles/nekrs.dir/helmholtz.cpp.o"
  "CMakeFiles/nekrs.dir/helmholtz.cpp.o.d"
  "CMakeFiles/nekrs.dir/multigrid.cpp.o"
  "CMakeFiles/nekrs.dir/multigrid.cpp.o.d"
  "libnekrs.a"
  "libnekrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nekrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
