# Empty dependencies file for nekrs.
# This may be replaced when dependencies are built.
