file(REMOVE_RECURSE
  "libnekrs.a"
)
