
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nekrs/cases.cpp" "src/nekrs/CMakeFiles/nekrs.dir/cases.cpp.o" "gcc" "src/nekrs/CMakeFiles/nekrs.dir/cases.cpp.o.d"
  "/root/repo/src/nekrs/flow_solver.cpp" "src/nekrs/CMakeFiles/nekrs.dir/flow_solver.cpp.o" "gcc" "src/nekrs/CMakeFiles/nekrs.dir/flow_solver.cpp.o.d"
  "/root/repo/src/nekrs/helmholtz.cpp" "src/nekrs/CMakeFiles/nekrs.dir/helmholtz.cpp.o" "gcc" "src/nekrs/CMakeFiles/nekrs.dir/helmholtz.cpp.o.d"
  "/root/repo/src/nekrs/multigrid.cpp" "src/nekrs/CMakeFiles/nekrs.dir/multigrid.cpp.o" "gcc" "src/nekrs/CMakeFiles/nekrs.dir/multigrid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sem/CMakeFiles/sem.dir/DependInfo.cmake"
  "/root/repo/build/src/occamini/CMakeFiles/occamini.dir/DependInfo.cmake"
  "/root/repo/build/src/mpimini/CMakeFiles/mpimini.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/instrument.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
