# Empty compiler generated dependencies file for xmlcfg.
# This may be replaced when dependencies are built.
