file(REMOVE_RECURSE
  "CMakeFiles/xmlcfg.dir/xml.cpp.o"
  "CMakeFiles/xmlcfg.dir/xml.cpp.o.d"
  "libxmlcfg.a"
  "libxmlcfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlcfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
