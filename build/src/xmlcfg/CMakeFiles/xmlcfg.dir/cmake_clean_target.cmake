file(REMOVE_RECURSE
  "libxmlcfg.a"
)
