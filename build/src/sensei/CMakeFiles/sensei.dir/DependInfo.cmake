
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensei/adios_adaptor.cpp" "src/sensei/CMakeFiles/sensei.dir/adios_adaptor.cpp.o" "gcc" "src/sensei/CMakeFiles/sensei.dir/adios_adaptor.cpp.o.d"
  "/root/repo/src/sensei/autocorrelation_adaptor.cpp" "src/sensei/CMakeFiles/sensei.dir/autocorrelation_adaptor.cpp.o" "gcc" "src/sensei/CMakeFiles/sensei.dir/autocorrelation_adaptor.cpp.o.d"
  "/root/repo/src/sensei/bpfile_adaptor.cpp" "src/sensei/CMakeFiles/sensei.dir/bpfile_adaptor.cpp.o" "gcc" "src/sensei/CMakeFiles/sensei.dir/bpfile_adaptor.cpp.o.d"
  "/root/repo/src/sensei/catalyst_adaptor.cpp" "src/sensei/CMakeFiles/sensei.dir/catalyst_adaptor.cpp.o" "gcc" "src/sensei/CMakeFiles/sensei.dir/catalyst_adaptor.cpp.o.d"
  "/root/repo/src/sensei/checkpoint_adaptor.cpp" "src/sensei/CMakeFiles/sensei.dir/checkpoint_adaptor.cpp.o" "gcc" "src/sensei/CMakeFiles/sensei.dir/checkpoint_adaptor.cpp.o.d"
  "/root/repo/src/sensei/configurable_analysis.cpp" "src/sensei/CMakeFiles/sensei.dir/configurable_analysis.cpp.o" "gcc" "src/sensei/CMakeFiles/sensei.dir/configurable_analysis.cpp.o.d"
  "/root/repo/src/sensei/data_adaptor.cpp" "src/sensei/CMakeFiles/sensei.dir/data_adaptor.cpp.o" "gcc" "src/sensei/CMakeFiles/sensei.dir/data_adaptor.cpp.o.d"
  "/root/repo/src/sensei/histogram_adaptor.cpp" "src/sensei/CMakeFiles/sensei.dir/histogram_adaptor.cpp.o" "gcc" "src/sensei/CMakeFiles/sensei.dir/histogram_adaptor.cpp.o.d"
  "/root/repo/src/sensei/intransit_data_adaptor.cpp" "src/sensei/CMakeFiles/sensei.dir/intransit_data_adaptor.cpp.o" "gcc" "src/sensei/CMakeFiles/sensei.dir/intransit_data_adaptor.cpp.o.d"
  "/root/repo/src/sensei/stats_adaptor.cpp" "src/sensei/CMakeFiles/sensei.dir/stats_adaptor.cpp.o" "gcc" "src/sensei/CMakeFiles/sensei.dir/stats_adaptor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svtk/CMakeFiles/svtk.dir/DependInfo.cmake"
  "/root/repo/build/src/render/CMakeFiles/render.dir/DependInfo.cmake"
  "/root/repo/build/src/adios/CMakeFiles/adios.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlcfg/CMakeFiles/xmlcfg.dir/DependInfo.cmake"
  "/root/repo/build/src/mpimini/CMakeFiles/mpimini.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/instrument.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
