# Empty compiler generated dependencies file for sensei.
# This may be replaced when dependencies are built.
