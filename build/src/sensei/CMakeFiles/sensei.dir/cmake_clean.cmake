file(REMOVE_RECURSE
  "CMakeFiles/sensei.dir/adios_adaptor.cpp.o"
  "CMakeFiles/sensei.dir/adios_adaptor.cpp.o.d"
  "CMakeFiles/sensei.dir/autocorrelation_adaptor.cpp.o"
  "CMakeFiles/sensei.dir/autocorrelation_adaptor.cpp.o.d"
  "CMakeFiles/sensei.dir/bpfile_adaptor.cpp.o"
  "CMakeFiles/sensei.dir/bpfile_adaptor.cpp.o.d"
  "CMakeFiles/sensei.dir/catalyst_adaptor.cpp.o"
  "CMakeFiles/sensei.dir/catalyst_adaptor.cpp.o.d"
  "CMakeFiles/sensei.dir/checkpoint_adaptor.cpp.o"
  "CMakeFiles/sensei.dir/checkpoint_adaptor.cpp.o.d"
  "CMakeFiles/sensei.dir/configurable_analysis.cpp.o"
  "CMakeFiles/sensei.dir/configurable_analysis.cpp.o.d"
  "CMakeFiles/sensei.dir/data_adaptor.cpp.o"
  "CMakeFiles/sensei.dir/data_adaptor.cpp.o.d"
  "CMakeFiles/sensei.dir/histogram_adaptor.cpp.o"
  "CMakeFiles/sensei.dir/histogram_adaptor.cpp.o.d"
  "CMakeFiles/sensei.dir/intransit_data_adaptor.cpp.o"
  "CMakeFiles/sensei.dir/intransit_data_adaptor.cpp.o.d"
  "CMakeFiles/sensei.dir/stats_adaptor.cpp.o"
  "CMakeFiles/sensei.dir/stats_adaptor.cpp.o.d"
  "libsensei.a"
  "libsensei.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensei.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
