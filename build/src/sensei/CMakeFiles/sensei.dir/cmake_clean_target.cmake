file(REMOVE_RECURSE
  "libsensei.a"
)
