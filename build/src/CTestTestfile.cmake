# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("instrument")
subdirs("xmlcfg")
subdirs("mpimini")
subdirs("occamini")
subdirs("svtk")
subdirs("sem")
subdirs("nekrs")
subdirs("render")
subdirs("adios")
subdirs("sensei")
subdirs("core")
