file(REMOVE_RECURSE
  "libadios.a"
)
