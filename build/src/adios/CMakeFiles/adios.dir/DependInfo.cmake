
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adios/bp_file.cpp" "src/adios/CMakeFiles/adios.dir/bp_file.cpp.o" "gcc" "src/adios/CMakeFiles/adios.dir/bp_file.cpp.o.d"
  "/root/repo/src/adios/marshal.cpp" "src/adios/CMakeFiles/adios.dir/marshal.cpp.o" "gcc" "src/adios/CMakeFiles/adios.dir/marshal.cpp.o.d"
  "/root/repo/src/adios/sst.cpp" "src/adios/CMakeFiles/adios.dir/sst.cpp.o" "gcc" "src/adios/CMakeFiles/adios.dir/sst.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpimini/CMakeFiles/mpimini.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/instrument.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
