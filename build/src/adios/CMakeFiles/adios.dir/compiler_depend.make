# Empty compiler generated dependencies file for adios.
# This may be replaced when dependencies are built.
