file(REMOVE_RECURSE
  "CMakeFiles/adios.dir/bp_file.cpp.o"
  "CMakeFiles/adios.dir/bp_file.cpp.o.d"
  "CMakeFiles/adios.dir/marshal.cpp.o"
  "CMakeFiles/adios.dir/marshal.cpp.o.d"
  "CMakeFiles/adios.dir/sst.cpp.o"
  "CMakeFiles/adios.dir/sst.cpp.o.d"
  "libadios.a"
  "libadios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
