file(REMOVE_RECURSE
  "CMakeFiles/instrument.dir/memory_tracker.cpp.o"
  "CMakeFiles/instrument.dir/memory_tracker.cpp.o.d"
  "CMakeFiles/instrument.dir/report.cpp.o"
  "CMakeFiles/instrument.dir/report.cpp.o.d"
  "CMakeFiles/instrument.dir/timer.cpp.o"
  "CMakeFiles/instrument.dir/timer.cpp.o.d"
  "libinstrument.a"
  "libinstrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
