# CMake generated Testfile for 
# Source directory: /root/repo/src/svtk
# Build directory: /root/repo/build/src/svtk
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
