# Empty compiler generated dependencies file for svtk.
# This may be replaced when dependencies are built.
