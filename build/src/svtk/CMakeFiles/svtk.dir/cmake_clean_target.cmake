file(REMOVE_RECURSE
  "libsvtk.a"
)
