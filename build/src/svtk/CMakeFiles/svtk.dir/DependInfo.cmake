
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svtk/data_array.cpp" "src/svtk/CMakeFiles/svtk.dir/data_array.cpp.o" "gcc" "src/svtk/CMakeFiles/svtk.dir/data_array.cpp.o.d"
  "/root/repo/src/svtk/serialize.cpp" "src/svtk/CMakeFiles/svtk.dir/serialize.cpp.o" "gcc" "src/svtk/CMakeFiles/svtk.dir/serialize.cpp.o.d"
  "/root/repo/src/svtk/unstructured_grid.cpp" "src/svtk/CMakeFiles/svtk.dir/unstructured_grid.cpp.o" "gcc" "src/svtk/CMakeFiles/svtk.dir/unstructured_grid.cpp.o.d"
  "/root/repo/src/svtk/vtu_writer.cpp" "src/svtk/CMakeFiles/svtk.dir/vtu_writer.cpp.o" "gcc" "src/svtk/CMakeFiles/svtk.dir/vtu_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instrument/CMakeFiles/instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlcfg/CMakeFiles/xmlcfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
