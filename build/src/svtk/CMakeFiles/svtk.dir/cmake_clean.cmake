file(REMOVE_RECURSE
  "CMakeFiles/svtk.dir/data_array.cpp.o"
  "CMakeFiles/svtk.dir/data_array.cpp.o.d"
  "CMakeFiles/svtk.dir/serialize.cpp.o"
  "CMakeFiles/svtk.dir/serialize.cpp.o.d"
  "CMakeFiles/svtk.dir/unstructured_grid.cpp.o"
  "CMakeFiles/svtk.dir/unstructured_grid.cpp.o.d"
  "CMakeFiles/svtk.dir/vtu_writer.cpp.o"
  "CMakeFiles/svtk.dir/vtu_writer.cpp.o.d"
  "libsvtk.a"
  "libsvtk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
