file(REMOVE_RECURSE
  "CMakeFiles/core.dir/bridge.cpp.o"
  "CMakeFiles/core.dir/bridge.cpp.o.d"
  "CMakeFiles/core.dir/nek_data_adaptor.cpp.o"
  "CMakeFiles/core.dir/nek_data_adaptor.cpp.o.d"
  "CMakeFiles/core.dir/workflows.cpp.o"
  "CMakeFiles/core.dir/workflows.cpp.o.d"
  "libcore.a"
  "libcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
