file(REMOVE_RECURSE
  "librender.a"
)
