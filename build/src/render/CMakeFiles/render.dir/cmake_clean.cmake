file(REMOVE_RECURSE
  "CMakeFiles/render.dir/camera.cpp.o"
  "CMakeFiles/render.dir/camera.cpp.o.d"
  "CMakeFiles/render.dir/colormap.cpp.o"
  "CMakeFiles/render.dir/colormap.cpp.o.d"
  "CMakeFiles/render.dir/compositor.cpp.o"
  "CMakeFiles/render.dir/compositor.cpp.o.d"
  "CMakeFiles/render.dir/image_io.cpp.o"
  "CMakeFiles/render.dir/image_io.cpp.o.d"
  "CMakeFiles/render.dir/isosurface.cpp.o"
  "CMakeFiles/render.dir/isosurface.cpp.o.d"
  "CMakeFiles/render.dir/rasterizer.cpp.o"
  "CMakeFiles/render.dir/rasterizer.cpp.o.d"
  "librender.a"
  "librender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
