# Empty compiler generated dependencies file for render.
# This may be replaced when dependencies are built.
