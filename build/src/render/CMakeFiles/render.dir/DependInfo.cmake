
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/render/camera.cpp" "src/render/CMakeFiles/render.dir/camera.cpp.o" "gcc" "src/render/CMakeFiles/render.dir/camera.cpp.o.d"
  "/root/repo/src/render/colormap.cpp" "src/render/CMakeFiles/render.dir/colormap.cpp.o" "gcc" "src/render/CMakeFiles/render.dir/colormap.cpp.o.d"
  "/root/repo/src/render/compositor.cpp" "src/render/CMakeFiles/render.dir/compositor.cpp.o" "gcc" "src/render/CMakeFiles/render.dir/compositor.cpp.o.d"
  "/root/repo/src/render/image_io.cpp" "src/render/CMakeFiles/render.dir/image_io.cpp.o" "gcc" "src/render/CMakeFiles/render.dir/image_io.cpp.o.d"
  "/root/repo/src/render/isosurface.cpp" "src/render/CMakeFiles/render.dir/isosurface.cpp.o" "gcc" "src/render/CMakeFiles/render.dir/isosurface.cpp.o.d"
  "/root/repo/src/render/rasterizer.cpp" "src/render/CMakeFiles/render.dir/rasterizer.cpp.o" "gcc" "src/render/CMakeFiles/render.dir/rasterizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svtk/CMakeFiles/svtk.dir/DependInfo.cmake"
  "/root/repo/build/src/mpimini/CMakeFiles/mpimini.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlcfg/CMakeFiles/xmlcfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
