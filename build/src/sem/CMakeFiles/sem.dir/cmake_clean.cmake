file(REMOVE_RECURSE
  "CMakeFiles/sem.dir/box_mesh.cpp.o"
  "CMakeFiles/sem.dir/box_mesh.cpp.o.d"
  "CMakeFiles/sem.dir/filter.cpp.o"
  "CMakeFiles/sem.dir/filter.cpp.o.d"
  "CMakeFiles/sem.dir/gather_scatter.cpp.o"
  "CMakeFiles/sem.dir/gather_scatter.cpp.o.d"
  "CMakeFiles/sem.dir/gll.cpp.o"
  "CMakeFiles/sem.dir/gll.cpp.o.d"
  "CMakeFiles/sem.dir/operators.cpp.o"
  "CMakeFiles/sem.dir/operators.cpp.o.d"
  "CMakeFiles/sem.dir/tensor.cpp.o"
  "CMakeFiles/sem.dir/tensor.cpp.o.d"
  "libsem.a"
  "libsem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
