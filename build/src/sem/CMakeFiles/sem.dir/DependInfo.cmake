
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sem/box_mesh.cpp" "src/sem/CMakeFiles/sem.dir/box_mesh.cpp.o" "gcc" "src/sem/CMakeFiles/sem.dir/box_mesh.cpp.o.d"
  "/root/repo/src/sem/filter.cpp" "src/sem/CMakeFiles/sem.dir/filter.cpp.o" "gcc" "src/sem/CMakeFiles/sem.dir/filter.cpp.o.d"
  "/root/repo/src/sem/gather_scatter.cpp" "src/sem/CMakeFiles/sem.dir/gather_scatter.cpp.o" "gcc" "src/sem/CMakeFiles/sem.dir/gather_scatter.cpp.o.d"
  "/root/repo/src/sem/gll.cpp" "src/sem/CMakeFiles/sem.dir/gll.cpp.o" "gcc" "src/sem/CMakeFiles/sem.dir/gll.cpp.o.d"
  "/root/repo/src/sem/operators.cpp" "src/sem/CMakeFiles/sem.dir/operators.cpp.o" "gcc" "src/sem/CMakeFiles/sem.dir/operators.cpp.o.d"
  "/root/repo/src/sem/tensor.cpp" "src/sem/CMakeFiles/sem.dir/tensor.cpp.o" "gcc" "src/sem/CMakeFiles/sem.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instrument/CMakeFiles/instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/mpimini/CMakeFiles/mpimini.dir/DependInfo.cmake"
  "/root/repo/build/src/occamini/CMakeFiles/occamini.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
