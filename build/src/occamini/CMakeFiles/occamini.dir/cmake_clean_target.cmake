file(REMOVE_RECURSE
  "liboccamini.a"
)
