# Empty dependencies file for occamini.
# This may be replaced when dependencies are built.
