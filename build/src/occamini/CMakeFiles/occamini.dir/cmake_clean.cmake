file(REMOVE_RECURSE
  "CMakeFiles/occamini.dir/device.cpp.o"
  "CMakeFiles/occamini.dir/device.cpp.o.d"
  "liboccamini.a"
  "liboccamini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occamini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
