file(REMOVE_RECURSE
  "CMakeFiles/pebble_bed_insitu.dir/pebble_bed_insitu.cpp.o"
  "CMakeFiles/pebble_bed_insitu.dir/pebble_bed_insitu.cpp.o.d"
  "pebble_bed_insitu"
  "pebble_bed_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pebble_bed_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
