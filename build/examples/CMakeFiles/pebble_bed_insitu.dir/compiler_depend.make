# Empty compiler generated dependencies file for pebble_bed_insitu.
# This may be replaced when dependencies are built.
