# Empty compiler generated dependencies file for posthoc_analysis.
# This may be replaced when dependencies are built.
