file(REMOVE_RECURSE
  "CMakeFiles/posthoc_analysis.dir/posthoc_analysis.cpp.o"
  "CMakeFiles/posthoc_analysis.dir/posthoc_analysis.cpp.o.d"
  "posthoc_analysis"
  "posthoc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posthoc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
