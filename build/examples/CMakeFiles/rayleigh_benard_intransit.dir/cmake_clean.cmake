file(REMOVE_RECURSE
  "CMakeFiles/rayleigh_benard_intransit.dir/rayleigh_benard_intransit.cpp.o"
  "CMakeFiles/rayleigh_benard_intransit.dir/rayleigh_benard_intransit.cpp.o.d"
  "rayleigh_benard_intransit"
  "rayleigh_benard_intransit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rayleigh_benard_intransit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
