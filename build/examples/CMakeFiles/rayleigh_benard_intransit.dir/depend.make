# Empty dependencies file for rayleigh_benard_intransit.
# This may be replaced when dependencies are built.
