# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/instrument_test[1]_include.cmake")
include("/root/repo/build/tests/xmlcfg_test[1]_include.cmake")
include("/root/repo/build/tests/mpimini_test[1]_include.cmake")
include("/root/repo/build/tests/occamini_test[1]_include.cmake")
include("/root/repo/build/tests/svtk_test[1]_include.cmake")
include("/root/repo/build/tests/sem_test[1]_include.cmake")
include("/root/repo/build/tests/filter_test[1]_include.cmake")
include("/root/repo/build/tests/nekrs_test[1]_include.cmake")
include("/root/repo/build/tests/adios_test[1]_include.cmake")
include("/root/repo/build/tests/render_test[1]_include.cmake")
include("/root/repo/build/tests/isosurface_test[1]_include.cmake")
include("/root/repo/build/tests/sensei_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
