# Empty compiler generated dependencies file for occamini_test.
# This may be replaced when dependencies are built.
