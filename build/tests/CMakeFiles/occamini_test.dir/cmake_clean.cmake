file(REMOVE_RECURSE
  "CMakeFiles/occamini_test.dir/occamini_test.cpp.o"
  "CMakeFiles/occamini_test.dir/occamini_test.cpp.o.d"
  "occamini_test"
  "occamini_test.pdb"
  "occamini_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occamini_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
