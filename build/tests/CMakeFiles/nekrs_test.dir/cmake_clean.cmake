file(REMOVE_RECURSE
  "CMakeFiles/nekrs_test.dir/nekrs_test.cpp.o"
  "CMakeFiles/nekrs_test.dir/nekrs_test.cpp.o.d"
  "nekrs_test"
  "nekrs_test.pdb"
  "nekrs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nekrs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
