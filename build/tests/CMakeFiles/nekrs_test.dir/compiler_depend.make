# Empty compiler generated dependencies file for nekrs_test.
# This may be replaced when dependencies are built.
