file(REMOVE_RECURSE
  "CMakeFiles/isosurface_test.dir/isosurface_test.cpp.o"
  "CMakeFiles/isosurface_test.dir/isosurface_test.cpp.o.d"
  "isosurface_test"
  "isosurface_test.pdb"
  "isosurface_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isosurface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
