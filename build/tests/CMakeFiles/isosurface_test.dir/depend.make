# Empty dependencies file for isosurface_test.
# This may be replaced when dependencies are built.
