file(REMOVE_RECURSE
  "CMakeFiles/xmlcfg_test.dir/xmlcfg_test.cpp.o"
  "CMakeFiles/xmlcfg_test.dir/xmlcfg_test.cpp.o.d"
  "xmlcfg_test"
  "xmlcfg_test.pdb"
  "xmlcfg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlcfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
