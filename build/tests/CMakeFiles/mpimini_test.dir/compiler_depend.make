# Empty compiler generated dependencies file for mpimini_test.
# This may be replaced when dependencies are built.
