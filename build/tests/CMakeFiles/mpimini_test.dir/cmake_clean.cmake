file(REMOVE_RECURSE
  "CMakeFiles/mpimini_test.dir/mpimini_test.cpp.o"
  "CMakeFiles/mpimini_test.dir/mpimini_test.cpp.o.d"
  "mpimini_test"
  "mpimini_test.pdb"
  "mpimini_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpimini_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
