# Empty compiler generated dependencies file for svtk_test.
# This may be replaced when dependencies are built.
