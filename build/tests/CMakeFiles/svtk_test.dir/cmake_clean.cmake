file(REMOVE_RECURSE
  "CMakeFiles/svtk_test.dir/svtk_test.cpp.o"
  "CMakeFiles/svtk_test.dir/svtk_test.cpp.o.d"
  "svtk_test"
  "svtk_test.pdb"
  "svtk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
