file(REMOVE_RECURSE
  "CMakeFiles/sensei_test.dir/sensei_test.cpp.o"
  "CMakeFiles/sensei_test.dir/sensei_test.cpp.o.d"
  "sensei_test"
  "sensei_test.pdb"
  "sensei_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensei_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
