# Empty dependencies file for sensei_test.
# This may be replaced when dependencies are built.
