file(REMOVE_RECURSE
  "CMakeFiles/fig3_insitu_memory.dir/fig3_insitu_memory.cpp.o"
  "CMakeFiles/fig3_insitu_memory.dir/fig3_insitu_memory.cpp.o.d"
  "fig3_insitu_memory"
  "fig3_insitu_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_insitu_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
