# Empty compiler generated dependencies file for micro_adios_sst.
# This may be replaced when dependencies are built.
