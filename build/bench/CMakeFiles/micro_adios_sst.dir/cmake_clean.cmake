file(REMOVE_RECURSE
  "CMakeFiles/micro_adios_sst.dir/micro_adios_sst.cpp.o"
  "CMakeFiles/micro_adios_sst.dir/micro_adios_sst.cpp.o.d"
  "micro_adios_sst"
  "micro_adios_sst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_adios_sst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
