file(REMOVE_RECURSE
  "CMakeFiles/ablation_stabilization.dir/ablation_stabilization.cpp.o"
  "CMakeFiles/ablation_stabilization.dir/ablation_stabilization.cpp.o.d"
  "ablation_stabilization"
  "ablation_stabilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
