# Empty dependencies file for ablation_stabilization.
# This may be replaced when dependencies are built.
