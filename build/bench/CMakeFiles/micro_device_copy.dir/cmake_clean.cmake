file(REMOVE_RECURSE
  "CMakeFiles/micro_device_copy.dir/micro_device_copy.cpp.o"
  "CMakeFiles/micro_device_copy.dir/micro_device_copy.cpp.o.d"
  "micro_device_copy"
  "micro_device_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_device_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
