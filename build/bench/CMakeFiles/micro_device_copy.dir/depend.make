# Empty dependencies file for micro_device_copy.
# This may be replaced when dependencies are built.
