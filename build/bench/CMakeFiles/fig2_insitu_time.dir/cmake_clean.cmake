file(REMOVE_RECURSE
  "CMakeFiles/fig2_insitu_time.dir/fig2_insitu_time.cpp.o"
  "CMakeFiles/fig2_insitu_time.dir/fig2_insitu_time.cpp.o.d"
  "fig2_insitu_time"
  "fig2_insitu_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_insitu_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
