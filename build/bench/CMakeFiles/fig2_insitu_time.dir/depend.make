# Empty dependencies file for fig2_insitu_time.
# This may be replaced when dependencies are built.
