file(REMOVE_RECURSE
  "CMakeFiles/micro_render.dir/micro_render.cpp.o"
  "CMakeFiles/micro_render.dir/micro_render.cpp.o.d"
  "micro_render"
  "micro_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
