# Empty compiler generated dependencies file for fig6_intransit_memory.
# This may be replaced when dependencies are built.
