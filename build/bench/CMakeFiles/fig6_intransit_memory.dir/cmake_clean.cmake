file(REMOVE_RECURSE
  "CMakeFiles/fig6_intransit_memory.dir/fig6_intransit_memory.cpp.o"
  "CMakeFiles/fig6_intransit_memory.dir/fig6_intransit_memory.cpp.o.d"
  "fig6_intransit_memory"
  "fig6_intransit_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_intransit_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
