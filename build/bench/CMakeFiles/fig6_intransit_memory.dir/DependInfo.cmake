
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_intransit_memory.cpp" "bench/CMakeFiles/fig6_intransit_memory.dir/fig6_intransit_memory.cpp.o" "gcc" "bench/CMakeFiles/fig6_intransit_memory.dir/fig6_intransit_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/nekrs/CMakeFiles/nekrs.dir/DependInfo.cmake"
  "/root/repo/build/src/sensei/CMakeFiles/sensei.dir/DependInfo.cmake"
  "/root/repo/build/src/adios/CMakeFiles/adios.dir/DependInfo.cmake"
  "/root/repo/build/src/render/CMakeFiles/render.dir/DependInfo.cmake"
  "/root/repo/build/src/svtk/CMakeFiles/svtk.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/sem.dir/DependInfo.cmake"
  "/root/repo/build/src/occamini/CMakeFiles/occamini.dir/DependInfo.cmake"
  "/root/repo/build/src/mpimini/CMakeFiles/mpimini.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlcfg/CMakeFiles/xmlcfg.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/instrument.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
