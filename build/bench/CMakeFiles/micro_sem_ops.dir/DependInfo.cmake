
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_sem_ops.cpp" "bench/CMakeFiles/micro_sem_ops.dir/micro_sem_ops.cpp.o" "gcc" "bench/CMakeFiles/micro_sem_ops.dir/micro_sem_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nekrs/CMakeFiles/nekrs.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/sem.dir/DependInfo.cmake"
  "/root/repo/build/src/occamini/CMakeFiles/occamini.dir/DependInfo.cmake"
  "/root/repo/build/src/mpimini/CMakeFiles/mpimini.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/instrument.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
