file(REMOVE_RECURSE
  "CMakeFiles/micro_sem_ops.dir/micro_sem_ops.cpp.o"
  "CMakeFiles/micro_sem_ops.dir/micro_sem_ops.cpp.o.d"
  "micro_sem_ops"
  "micro_sem_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sem_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
